"""Synchronous distributed Borůvka on maximum weights (Algorithm 1 core).

Each phase, every fragment finds its Maximum-Weight Outgoing Edge (MWOE)
and connects over it; fragments linked by chosen edges merge.  With
distinct weights this can never create a cycle and finishes in
⌈log₂ n⌉ phases — the source of the paper's O(n log n) message bound.

Message accounting per phase (see :mod:`repro.spanningtree.messages`):

* one ``TEST`` per boundary node (a node with ≥ 1 outgoing edge) — the
  RSSI probe of its heaviest outgoing link;
* one ``REPORT`` per fragment member — the aggregating convergecast of
  local candidates up to the head;
* ``size − 1`` ``MERGE_ANNOUNCE`` per fragment — the head's broadcast of
  the chosen edge down the fragment tree (one transmission per tree edge);
* one ``CONNECT`` per fragment with an MWOE.

Ties are broken by node-id pair so the weight order is total even when
two physical links produce identical RSSI values.

Two entry points share one fully vectorized phase driver: per-node
candidate scans and the per-fragment MWOE election are segment reductions
(no per-node Python loops).  :func:`distributed_boruvka` scans a dense
``(n, n)`` weight matrix; :func:`distributed_boruvka_csr` scans a CSR
edge list in O(E) per phase.  Candidate selection is deterministic and
identical in both (ties: higher weight, then lower ``(min, max)`` pair),
so they produce the same phases, edges and message bill.

A third entry point, :func:`distributed_boruvka_batch`, reuses the CSR
candidate scan under :func:`_run_phases_batch` — an incremental
component array plus bincount accounting instead of per-fragment Python
loops — for the ``batch`` backend; it returns the identical result.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_active
from repro.spanningtree.fragment import Fragment, FragmentSet
from repro.spanningtree.messages import MessageCounter, MessageKind


@dataclass(frozen=True)
class PhaseRecord:
    """What happened in one Borůvka phase."""

    phase: int
    fragments_before: int
    fragments_after: int
    chosen_edges: tuple[tuple[int, int], ...]
    messages: dict[str, int] = field(default_factory=dict)

    @property
    def merges(self) -> int:
        return self.fragments_before - self.fragments_after


@dataclass
class BoruvkaResult:
    """Outcome of a full distributed Borůvka run."""

    edges: list[tuple[int, int]]
    phases: list[PhaseRecord]
    counter: MessageCounter
    fragments: list[Fragment]

    @property
    def converged(self) -> bool:
        """True when a single spanning fragment remains."""
        return len(self.fragments) == 1

    @property
    def phase_count(self) -> int:
        return len(self.phases)


def _edge_key(w: float, u: int, v: int, n: int) -> tuple[float, int]:
    """Total order on edges: weight first, then a deterministic id pair."""
    a, b = (u, v) if u < v else (v, u)
    return (w, -(a * n + b))


def _default_max_phases(n: int) -> int:
    return 2 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 4


def _fragment_mwoe(
    comp: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    ws: np.ndarray,
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Elect each fragment's MWOE from per-node candidates (vectorized).

    The winner per fragment root maximizes ``(weight, -(min·n + max))`` —
    the same total order :func:`_edge_key` defines.  Returns the winning
    ``(roots, u, v)`` triple arrays.
    """
    roots = comp[us]
    a = np.minimum(us, vs)
    b = np.maximum(us, vs)
    pair_id = a * np.int64(n) + b
    order = np.lexsort((pair_id, -ws, roots))
    r_sorted = roots[order]
    first = np.concatenate(([True], r_sorted[1:] != r_sorted[:-1]))
    sel = order[first]
    return roots[sel], us[sel], vs[sel]


def _run_phases(
    n: int,
    frags: FragmentSet,
    counter: MessageCounter,
    max_phases: int,
    candidate_fn,
) -> list[PhaseRecord]:
    """Shared phase driver.

    ``candidate_fn(comp)`` returns per-node candidates ``(us, vs, ws)``:
    for every node ``u`` with at least one outgoing edge, its heaviest
    one (ties: lowest neighbour id, matching dense argmax).
    """
    obs = get_active()
    phases: list[PhaseRecord] = []
    for phase_idx in range(max_phases):
        if frags.count == 1:
            break
        comp = np.fromiter(
            (frags.fragment_of(i) for i in range(n)), dtype=np.int64, count=n
        )
        span = (
            obs.span("mwoe_scan", phase=phase_idx, nodes=n)
            if obs is not None
            else nullcontext()
        )
        with span:
            us, vs, ws = candidate_fn(comp)
        if us.size == 0:
            break  # disconnected: remaining fragments can never merge

        phase_counter = MessageCounter()
        phase_counter.add(MessageKind.TEST, int(us.size))
        fragments_before = frags.count
        roots_sel, u_sel, v_sel = _fragment_mwoe(comp, us, vs, ws, n)
        mwoe_roots = set(int(r) for r in roots_sel)

        # convergecast + broadcast + connect accounting; fragments with no
        # outgoing edge (done, or isolated/dead nodes) stay silent
        for frag in frags.fragments():
            root = frags.fragment_of(frag.head)
            if root in mwoe_roots:
                phase_counter.add(MessageKind.REPORT, frag.size)
                phase_counter.add(MessageKind.MERGE_ANNOUNCE, frag.size - 1)
                phase_counter.add(MessageKind.CONNECT, 1)

        chosen: list[tuple[int, int]] = []
        for u, v in zip(u_sel.tolist(), v_sel.tolist()):
            if frags.merge(u, v):
                chosen.append((min(u, v), max(u, v)))
        counter.merge(phase_counter)
        phases.append(
            PhaseRecord(
                phase=phase_idx,
                fragments_before=fragments_before,
                fragments_after=frags.count,
                chosen_edges=tuple(sorted(chosen)),
                messages=phase_counter.as_dict(),
            )
        )
    return phases


def _run_phases_batch(
    n: int,
    frags: FragmentSet,
    counter: MessageCounter,
    max_phases: int,
    candidate_fn,
) -> list[PhaseRecord]:
    """Batch-backend phase driver — same phases as :func:`_run_phases`.

    Two per-phase Python bottlenecks of the shared driver are replaced
    with array passes that compute the exact same integers:

    * the component scan (``fromiter`` over ``fragment_of``) becomes an
      incrementally maintained ``comp`` array, updated after each phase
      by pointer-jumping a root remap until it reaches a fixpoint (one
      phase's merges can chain, so a root may map through several hops);
    * the per-fragment accounting loop (which snapshots every fragment
      as a frozenset each phase) becomes a ``bincount`` over ``comp``:
      a fragment whose root won an MWOE contributes REPORT = size,
      MERGE_ANNOUNCE = size − 1 and CONNECT = 1 — summed in bulk.

    Candidate selection, MWOE election and the merge sequence are the
    shared code paths, so phases, chosen edges and message bills are
    identical to the sparse driver's.
    """
    obs = get_active()
    phases: list[PhaseRecord] = []
    if frags.count == n:
        comp = np.arange(n, dtype=np.int64)
    else:  # seeded fragments: materialize the union-find state once
        comp = np.fromiter(
            (frags.fragment_of(i) for i in range(n)), dtype=np.int64, count=n
        )
    for phase_idx in range(max_phases):
        if frags.count == 1:
            break
        span = (
            obs.span("mwoe_scan", phase=phase_idx, nodes=n)
            if obs is not None
            else nullcontext()
        )
        with span:
            us, vs, ws = candidate_fn(comp)
        if us.size == 0:
            break  # disconnected: remaining fragments can never merge

        phase_counter = MessageCounter()
        phase_counter.add(MessageKind.TEST, int(us.size))
        fragments_before = frags.count
        roots_sel, u_sel, v_sel = _fragment_mwoe(comp, us, vs, ws, n)
        # _fragment_mwoe returns one winner per distinct root, so the
        # fragments with an MWOE are exactly roots_sel
        sizes_sel = np.bincount(comp, minlength=n)[roots_sel]
        members = int(sizes_sel.sum())
        phase_counter.add(MessageKind.REPORT, members)
        phase_counter.add(MessageKind.MERGE_ANNOUNCE, members - roots_sel.size)
        phase_counter.add(MessageKind.CONNECT, int(roots_sel.size))

        remap = np.arange(n, dtype=np.int64)
        chosen: list[tuple[int, int]] = []
        for u, v in zip(u_sel.tolist(), v_sel.tolist()):
            ru = frags.fragment_of(u)
            rv = frags.fragment_of(v)
            if frags.merge(u, v):
                chosen.append((min(u, v), max(u, v)))
                root = frags.fragment_of(u)
                remap[ru] = root
                remap[rv] = root
        # squash merge chains (root absorbed by a later merge this phase)
        while True:
            squashed = remap[remap]
            if np.array_equal(squashed, remap):
                break
            remap = squashed
        comp = remap[comp]
        counter.merge(phase_counter)
        phases.append(
            PhaseRecord(
                phase=phase_idx,
                fragments_before=fragments_before,
                fragments_after=frags.count,
                chosen_edges=tuple(sorted(chosen)),
                messages=phase_counter.as_dict(),
            )
        )
    return phases


def _seed_fragments(
    frags: FragmentSet,
    initial_edges: list[tuple[int, int]] | None,
    edge_exists,
) -> None:
    if not initial_edges:
        return
    for u, v in initial_edges:
        if not edge_exists(u, v):
            raise ValueError(f"initial edge ({u}, {v}) is not a usable link")
        if not frags.merge(u, v):
            raise ValueError(f"initial edges contain a cycle at ({u}, {v})")


def distributed_boruvka(
    weights: np.ndarray,
    adjacency: np.ndarray,
    *,
    max_phases: int | None = None,
    initial_edges: list[tuple[int, int]] | None = None,
) -> BoruvkaResult:
    """Run synchronous Borůvka over ``adjacency`` maximizing ``weights``.

    Parameters
    ----------
    weights:
        Symmetric ``(n, n)`` PS-strength matrix (higher = heavier edge).
    adjacency:
        Boolean usable-edge mask (the proximity graph).
    max_phases:
        Safety cap; defaults to ``2·⌈log₂ n⌉ + 4``.
    initial_edges:
        Tree edges that already exist (e.g. what survived a failure);
        the corresponding fragments are formed for free — no messages —
        and the phases only pay for the *remaining* merging.  This is the
        primitive behind :mod:`repro.spanningtree.repair`.

    On a disconnected graph the result is the maximum spanning forest and
    ``converged`` is ``False``.
    """
    w = np.asarray(weights, dtype=float)
    adj = np.asarray(adjacency, dtype=bool)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError(f"weights must be square, got {w.shape}")
    if adj.shape != w.shape:
        raise ValueError("adjacency shape must match weights")
    n = w.shape[0]
    if n == 0:
        raise ValueError("graph must have at least one node")
    if max_phases is None:
        max_phases = _default_max_phases(n)

    # masked weights: -inf where no usable edge
    base = np.where(adj, w, -np.inf)
    np.fill_diagonal(base, -np.inf)

    frags = FragmentSet(n)
    _seed_fragments(frags, initial_edges, lambda u, v: bool(adj[u, v]))
    counter = MessageCounter()
    node_ids = np.arange(n)

    def candidates(comp: np.ndarray):
        # outgoing = usable edges whose endpoints are in different fragments
        outgoing = np.where(comp[:, None] != comp[None, :], base, -np.inf)
        best_nbr = np.argmax(outgoing, axis=1)
        best_w = outgoing[node_ids, best_nbr]
        has_out = np.isfinite(best_w)
        us = np.nonzero(has_out)[0]
        return us, best_nbr[us], best_w[us]

    phases = _run_phases(n, frags, counter, max_phases, candidates)
    return BoruvkaResult(
        edges=frags.all_tree_edges(),
        phases=phases,
        counter=counter,
        fragments=frags.fragments(),
    )


def distributed_boruvka_csr(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_weight: np.ndarray,
    *,
    max_phases: int | None = None,
    initial_edges: list[tuple[int, int]] | None = None,
) -> BoruvkaResult:
    """CSR :func:`distributed_boruvka`: O(E) per phase, no (n, n) arrays.

    The graph must be symmetric (every edge present in both directions,
    as the :class:`~repro.radio.sparse_link.SparseLinkBudget` proximity
    CSR is) with direction-symmetric weights.  Produces the same phases,
    chosen edges and message bill as the dense function on the
    equivalent matrix inputs.
    """
    return _boruvka_csr(
        n,
        indptr,
        indices,
        edge_weight,
        _run_phases,
        max_phases=max_phases,
        initial_edges=initial_edges,
    )


def distributed_boruvka_batch(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_weight: np.ndarray,
    *,
    max_phases: int | None = None,
    initial_edges: list[tuple[int, int]] | None = None,
) -> BoruvkaResult:
    """Batch-backend :func:`distributed_boruvka_csr` — identical result.

    Same CSR candidate scan (one up-front presort, first surviving edge
    per node per phase) driven by :func:`_run_phases_batch`, which keeps
    the fragment-component array incrementally and accounts messages
    with a ``bincount`` instead of per-fragment Python loops.  Phases,
    chosen edges, message bills and final fragments are equal to the
    CSR (and dense) functions' — verified edge-for-edge by
    ``tests/test_batch_parity.py``.
    """
    return _boruvka_csr(
        n,
        indptr,
        indices,
        edge_weight,
        _run_phases_batch,
        max_phases=max_phases,
        initial_edges=initial_edges,
    )


def _boruvka_csr(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_weight: np.ndarray,
    phase_driver,
    *,
    max_phases: int | None = None,
    initial_edges: list[tuple[int, int]] | None = None,
) -> BoruvkaResult:
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    edge_weight = np.asarray(edge_weight, dtype=float)
    if n <= 0:
        raise ValueError("graph must have at least one node")
    if max_phases is None:
        max_phases = _default_max_phases(n)
    tx = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))

    # sorted directed codes for the initial-edge membership check
    codes = (tx.astype(np.uint64) << np.uint64(32)) | indices.astype(np.uint64)

    def edge_exists(u: int, v: int) -> bool:
        code = (np.uint64(u) << np.uint64(32)) | np.uint64(v)
        pos = int(np.searchsorted(codes, code))
        return pos < codes.size and codes[pos] == code

    frags = FragmentSet(n)
    _seed_fragments(frags, initial_edges, edge_exists)
    counter = MessageCounter()

    # one up-front sort by (tx, weight desc, neighbour id asc): each
    # phase then just takes the first still-outgoing edge per node —
    # O(E) per phase instead of an O(E log E) lexsort per phase
    order0 = np.lexsort((indices, -edge_weight, tx))
    t_s = tx[order0]
    r_s = indices[order0]
    w_s = edge_weight[order0]

    def candidates(comp: np.ndarray):
        idx = np.flatnonzero(comp[t_s] != comp[r_s])
        if idx.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=float)
        t = t_s[idx]
        # first surviving edge per node = its heaviest outgoing edge
        # (ties → lowest neighbour id, matching dense argmax semantics)
        first = np.concatenate(([True], t[1:] != t[:-1]))
        sel = idx[first]
        return t_s[sel], r_s[sel], w_s[sel]

    phases = phase_driver(n, frags, counter, max_phases, candidates)
    return BoruvkaResult(
        edges=frags.all_tree_edges(),
        phases=phases,
        counter=counter,
        fragments=frags.fragments(),
    )
