"""Synchronous distributed Borůvka on maximum weights (Algorithm 1 core).

Each phase, every fragment finds its Maximum-Weight Outgoing Edge (MWOE)
and connects over it; fragments linked by chosen edges merge.  With
distinct weights this can never create a cycle and finishes in
⌈log₂ n⌉ phases — the source of the paper's O(n log n) message bound.

Message accounting per phase (see :mod:`repro.spanningtree.messages`):

* one ``TEST`` per boundary node (a node with ≥ 1 outgoing edge) — the
  RSSI probe of its heaviest outgoing link;
* one ``REPORT`` per fragment member — the aggregating convergecast of
  local candidates up to the head;
* ``size − 1`` ``MERGE_ANNOUNCE`` per fragment — the head's broadcast of
  the chosen edge down the fragment tree (one transmission per tree edge);
* one ``CONNECT`` per fragment with an MWOE.

Ties are broken by node-id pair so the weight order is total even when
two physical links produce identical RSSI values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.spanningtree.fragment import Fragment, FragmentSet
from repro.spanningtree.messages import MessageCounter, MessageKind


@dataclass(frozen=True)
class PhaseRecord:
    """What happened in one Borůvka phase."""

    phase: int
    fragments_before: int
    fragments_after: int
    chosen_edges: tuple[tuple[int, int], ...]
    messages: dict[str, int] = field(default_factory=dict)

    @property
    def merges(self) -> int:
        return self.fragments_before - self.fragments_after


@dataclass
class BoruvkaResult:
    """Outcome of a full distributed Borůvka run."""

    edges: list[tuple[int, int]]
    phases: list[PhaseRecord]
    counter: MessageCounter
    fragments: list[Fragment]

    @property
    def converged(self) -> bool:
        """True when a single spanning fragment remains."""
        return len(self.fragments) == 1

    @property
    def phase_count(self) -> int:
        return len(self.phases)


def _edge_key(w: float, u: int, v: int, n: int) -> tuple[float, int]:
    """Total order on edges: weight first, then a deterministic id pair."""
    a, b = (u, v) if u < v else (v, u)
    return (w, -(a * n + b))


def distributed_boruvka(
    weights: np.ndarray,
    adjacency: np.ndarray,
    *,
    max_phases: int | None = None,
    initial_edges: list[tuple[int, int]] | None = None,
) -> BoruvkaResult:
    """Run synchronous Borůvka over ``adjacency`` maximizing ``weights``.

    Parameters
    ----------
    weights:
        Symmetric ``(n, n)`` PS-strength matrix (higher = heavier edge).
    adjacency:
        Boolean usable-edge mask (the proximity graph).
    max_phases:
        Safety cap; defaults to ``2·⌈log₂ n⌉ + 4``.
    initial_edges:
        Tree edges that already exist (e.g. what survived a failure);
        the corresponding fragments are formed for free — no messages —
        and the phases only pay for the *remaining* merging.  This is the
        primitive behind :mod:`repro.spanningtree.repair`.

    On a disconnected graph the result is the maximum spanning forest and
    ``converged`` is ``False``.
    """
    w = np.asarray(weights, dtype=float)
    adj = np.asarray(adjacency, dtype=bool)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError(f"weights must be square, got {w.shape}")
    if adj.shape != w.shape:
        raise ValueError("adjacency shape must match weights")
    n = w.shape[0]
    if n == 0:
        raise ValueError("graph must have at least one node")
    if max_phases is None:
        max_phases = 2 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 4

    # masked weights: -inf where no usable edge
    base = np.where(adj, w, -np.inf)
    np.fill_diagonal(base, -np.inf)

    frags = FragmentSet(n)
    if initial_edges:
        for u, v in initial_edges:
            if not adj[u, v]:
                raise ValueError(
                    f"initial edge ({u}, {v}) is not a usable link"
                )
            if not frags.merge(u, v):
                raise ValueError(
                    f"initial edges contain a cycle at ({u}, {v})"
                )
    counter = MessageCounter()
    phases: list[PhaseRecord] = []

    for phase_idx in range(max_phases):
        if frags.count == 1:
            break
        comp = np.fromiter(
            (frags.fragment_of(i) for i in range(n)), dtype=int, count=n
        )
        # outgoing = usable edges whose endpoints are in different fragments
        outgoing = np.where(comp[:, None] != comp[None, :], base, -np.inf)
        best_nbr = np.argmax(outgoing, axis=1)
        best_w = outgoing[np.arange(n), best_nbr]
        has_out = np.isfinite(best_w)
        if not has_out.any():
            break  # disconnected: remaining fragments can never merge

        phase_counter = MessageCounter()
        phase_counter.add(MessageKind.TEST, int(has_out.sum()))

        # per-fragment MWOE via the nodes' local candidates
        fragments_before = frags.count
        mwoe: dict[int, tuple[tuple[float, int], int, int]] = {}
        for u in np.nonzero(has_out)[0]:
            u = int(u)
            v = int(best_nbr[u])
            key = _edge_key(float(best_w[u]), u, v, n)
            root = int(comp[u])
            cur = mwoe.get(root)
            if cur is None or key > cur[0]:
                mwoe[root] = (key, u, v)

        # convergecast + broadcast + connect accounting; fragments with no
        # outgoing edge (done, or isolated/dead nodes) stay silent
        for frag in frags.fragments():
            root = frags.fragment_of(frag.head)
            if root in mwoe:
                phase_counter.add(MessageKind.REPORT, frag.size)
                phase_counter.add(MessageKind.MERGE_ANNOUNCE, frag.size - 1)
                phase_counter.add(MessageKind.CONNECT, 1)

        chosen: list[tuple[int, int]] = []
        for _key, u, v in mwoe.values():
            if frags.merge(u, v):
                chosen.append((min(u, v), max(u, v)))
        counter.merge(phase_counter)
        phases.append(
            PhaseRecord(
                phase=phase_idx,
                fragments_before=fragments_before,
                fragments_after=frags.count,
                chosen_edges=tuple(sorted(chosen)),
                messages=phase_counter.as_dict(),
            )
        )

    return BoruvkaResult(
        edges=frags.all_tree_edges(),
        phases=phases,
        counter=counter,
        fragments=frags.fragments(),
    )
