"""Fragment bookkeeping for distributed spanning-tree growth.

A *fragment* (the paper's sub-tree ``Sv``) is a connected set of devices
that already agree on a common tree and a head.  ``FragmentSet`` tracks
all fragments over a union–find and maintains each fragment's tree edges,
head, and size — the inputs to the head-election rule of Algorithm 1
("choose Sv.head from highest number of node's tree").
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.spanningtree.unionfind import UnionFind


@dataclass
class Fragment:
    """One sub-tree: members, head, and accepted tree edges."""

    head: int
    members: frozenset[int]
    tree_edges: tuple[tuple[int, int], ...] = ()

    @property
    def size(self) -> int:
        return len(self.members)

    def subtree_graph(self) -> nx.Graph:
        """The fragment's tree as a NetworkX graph (isolated head if no edges)."""
        g = nx.Graph()
        g.add_nodes_from(self.members)
        g.add_edges_from(self.tree_edges)
        return g

    def diameter_hops(self) -> int:
        """Hop diameter of the fragment tree (0 for singleton)."""
        if self.size <= 1:
            return 0
        return nx.diameter(self.subtree_graph())


class FragmentSet:
    """All current fragments; starts with every device a singleton."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._uf = UnionFind(n)
        self._heads: dict[int, int] = {i: i for i in range(n)}
        self._edges: dict[int, list[tuple[int, int]]] = {i: [] for i in range(n)}

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of fragments remaining (``|ST|`` in Algorithm 1)."""
        return self._uf.components

    def fragment_of(self, node: int) -> int:
        """Union–find root identifying ``node``'s fragment."""
        return self._uf.find(node)

    def head_of(self, node: int) -> int:
        return self._heads[self._uf.find(node)]

    def size_of(self, node: int) -> int:
        return self._uf.size_of(node)

    def same_fragment(self, a: int, b: int) -> bool:
        return self._uf.connected(a, b)

    def change_head(self, node: int, new_head: int) -> None:
        """The paper's ``Change_head(Sv)`` — reassign the fragment head."""
        root = self._uf.find(node)
        if self._uf.find(new_head) != root:
            raise ValueError(
                f"new head {new_head} is not a member of {node}'s fragment"
            )
        self._heads[root] = new_head

    # ------------------------------------------------------------------
    def merge(self, u: int, v: int) -> bool:
        """Merge the fragments of ``u`` and ``v`` across tree edge (u, v).

        Head election follows Algorithm 1: the merged head is the head of
        the *larger* fragment (node-count), ties broken toward the smaller
        head id for determinism.  Returns ``False`` (and does nothing) if
        the two nodes are already in one fragment.
        """
        ru, rv = self._uf.find(u), self._uf.find(v)
        if ru == rv:
            return False
        size_u, size_v = self._uf.size_of(u), self._uf.size_of(v)
        head_u, head_v = self._heads[ru], self._heads[rv]
        if size_u > size_v:
            new_head = head_u
        elif size_v > size_u:
            new_head = head_v
        else:
            new_head = min(head_u, head_v)
        edges = self._edges[ru] + self._edges[rv] + [(min(u, v), max(u, v))]
        self._uf.union(u, v)
        root = self._uf.find(u)
        # drop stale entries so lookups can't resurrect old roots
        for old in (ru, rv):
            if old != root:
                self._heads.pop(old, None)
                self._edges.pop(old, None)
        self._heads[root] = new_head
        self._edges[root] = edges
        return True

    # ------------------------------------------------------------------
    def fragments(self) -> list[Fragment]:
        """Snapshot of all current fragments, sorted by head id."""
        out = []
        for root, members in self._uf.groups().items():
            out.append(
                Fragment(
                    head=self._heads[root],
                    members=frozenset(members),
                    tree_edges=tuple(self._edges[root]),
                )
            )
        return sorted(out, key=lambda f: f.head)

    def all_tree_edges(self) -> list[tuple[int, int]]:
        """Every accepted tree edge across all fragments."""
        edges: list[tuple[int, int]] = []
        for root in self._edges:
            edges.extend(self._edges[root])
        return sorted(set(edges))
