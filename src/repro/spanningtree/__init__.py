"""Distributed maximum-weight spanning-tree construction (paper §IV).

The proposed ST method grows a spanning tree Borůvka/GHS style over the
proximity graph, using PS strength (RSSI) as edge weight and always
selecting each fragment's *heaviest* outgoing edge ("by selecting heavy
edge, devices make synchronization in networks").  This subpackage holds:

* :mod:`repro.spanningtree.unionfind` — union–find with size tracking;
* :mod:`repro.spanningtree.messages` — protocol message kinds + counters;
* :mod:`repro.spanningtree.fragment` — fragment bookkeeping;
* :mod:`repro.spanningtree.boruvka` — synchronous distributed Borůvka
  (the mechanism inside Algorithm 1/2) with per-message accounting;
* :mod:`repro.spanningtree.ghs` — level-based GHS merge-rule variant;
* :mod:`repro.spanningtree.mst` — centralized Kruskal reference used to
  validate that the distributed algorithms find a true maximum spanning
  tree (they must, on distinct weights).
"""

from repro.spanningtree.boruvka import BoruvkaResult, PhaseRecord, distributed_boruvka
from repro.spanningtree.fragment import Fragment, FragmentSet
from repro.spanningtree.ghs import GHSResult, distributed_ghs
from repro.spanningtree.liveview import FragmentInfo, FragmentView
from repro.spanningtree.messages import MessageCounter, MessageKind
from repro.spanningtree.mst import (
    is_spanning_tree,
    maximum_spanning_tree,
    tree_weight,
)
from repro.spanningtree.repair import (
    RepairResult,
    repair_after_failure,
    repair_after_failure_csr,
)
from repro.spanningtree.unionfind import UnionFind

__all__ = [
    "BoruvkaResult",
    "Fragment",
    "FragmentInfo",
    "FragmentSet",
    "FragmentView",
    "GHSResult",
    "MessageCounter",
    "MessageKind",
    "PhaseRecord",
    "RepairResult",
    "UnionFind",
    "repair_after_failure",
    "repair_after_failure_csr",
    "distributed_boruvka",
    "distributed_ghs",
    "is_spanning_tree",
    "maximum_spanning_tree",
    "tree_weight",
]
