"""Union–find (disjoint set) with union-by-size and path compression."""

from __future__ import annotations


class UnionFind:
    """Disjoint-set forest over elements ``0..n-1``.

    ``union`` returns whether a merge happened; ``size_of`` supports the
    paper's head-election rule ("choose Sv.head from highest number of
    node's tree").
    """

    __slots__ = ("_parent", "_size", "components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self.components = n

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already together."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def size_of(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    def groups(self) -> dict[int, list[int]]:
        """Map root → sorted member list."""
        out: dict[int, list[int]] = {}
        for i in range(len(self._parent)):
            out.setdefault(self.find(i), []).append(i)
        return out
