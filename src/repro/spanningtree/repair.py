"""Spanning-tree repair after device failure (churn extension).

When a tree device dies (battery, mobility out of cell, user exit), the
spanning tree splits into as many fragments as the dead device had tree
neighbours.  Rebuilding from scratch costs the full Borůvka bill; the
*repair* protocol instead keeps every surviving fragment intact and runs
Borůvka seeded with those fragments — only the few re-merging phases are
paid.  ``repair_after_failure`` implements this and reports both the
repaired tree and the message cost, so the repair-vs-rebuild saving is
measurable (see ``benchmarks/bench_extensions.py``).

This addresses the paper's §VI "more realistic scenarios" future work:
real D2D populations churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.radio.sparse_link import csr_from_edges
from repro.spanningtree.boruvka import (
    distributed_boruvka,
    distributed_boruvka_csr,
)
from repro.spanningtree.messages import MessageCounter
from repro.spanningtree.unionfind import UnionFind


@dataclass
class RepairResult:
    """Outcome of one repair."""

    #: the repaired tree over the surviving devices
    tree_edges: list[tuple[int, int]]
    #: edges newly added by the repair phases
    new_edges: list[tuple[int, int]]
    #: tree edges lost with the failed devices
    removed_edges: list[tuple[int, int]]
    #: fragments the failure created (before re-merging)
    fragments_after_failure: int
    messages: int
    phases: int
    #: True when the surviving devices are spanned again
    repaired: bool
    counter: MessageCounter


def _normalize_failed(
    failed: int | Iterable[int], n: int
) -> tuple[set[int], list[int]]:
    """Validated ``(failed ids, survivor ids)`` for an n-device network."""
    failed_set = {int(failed)} if isinstance(failed, (int, np.integer)) else set(
        int(f) for f in failed
    )
    for f in failed_set:
        if not 0 <= f < n:
            raise ValueError(f"failed id {f} out of range [0, {n})")
    survivors = [i for i in range(n) if i not in failed_set]
    if not survivors:
        raise ValueError("all devices failed; nothing to repair")
    return failed_set, survivors


def _split_tree(
    tree_edges: Iterable[tuple[int, int]],
    failed_set: set[int],
    survivors: list[int],
    n: int,
) -> tuple[list[tuple[int, int]], list[tuple[int, int]], int]:
    """Surviving/removed edge split + fragment count after the failure."""
    surviving_edges: list[tuple[int, int]] = []
    removed_edges: list[tuple[int, int]] = []
    for edge in tree_edges:
        e = tuple(sorted(edge))
        if e[0] in failed_set or e[1] in failed_set:
            removed_edges.append(e)
        else:
            surviving_edges.append(e)
    # how many pieces did the failure leave? (failed ids excluded)
    uf = UnionFind(n)
    for u, v in surviving_edges:
        uf.union(u, v)
    fragments = len({uf.find(i) for i in survivors})
    return surviving_edges, removed_edges, fragments


def _repair_result(
    result,
    surviving_edges: list[tuple[int, int]],
    removed_edges: list[tuple[int, int]],
    fragments: int,
    failed_set: set[int],
) -> RepairResult:
    """Package a seeded Borůvka run as a :class:`RepairResult`."""
    # repaired iff all survivors ended in one fragment (failed ids remain
    # isolated singleton fragments by construction)
    survivor_fragments = {
        frag.head
        for frag in result.fragments
        if not frag.members <= failed_set
    }
    repaired = len(survivor_fragments) == 1
    new_edges = sorted(set(result.edges) - set(surviving_edges))
    return RepairResult(
        tree_edges=result.edges,
        new_edges=new_edges,
        removed_edges=sorted(removed_edges),
        fragments_after_failure=fragments,
        messages=result.counter.total,
        phases=result.phase_count,
        repaired=repaired,
        counter=result.counter,
    )


def repair_after_failure(
    tree_edges: Iterable[tuple[int, int]],
    failed: int | Iterable[int],
    weights: np.ndarray,
    adjacency: np.ndarray,
) -> RepairResult:
    """Repair ``tree_edges`` after ``failed`` device(s) leave the network.

    Parameters
    ----------
    tree_edges:
        The spanning tree before the failure.
    failed:
        A device id or a collection of ids that left.
    weights, adjacency:
        The (current) PS-strength matrix and usable-link mask; rows and
        columns of failed devices are ignored.

    Raises
    ------
    ValueError
        If every device failed, or inputs are inconsistent.
    """
    weights = np.asarray(weights, dtype=float)
    adjacency = np.asarray(adjacency, dtype=bool)
    n = weights.shape[0]
    failed_set, survivors = _normalize_failed(failed, n)
    surviving_edges, removed_edges, fragments = _split_tree(
        tree_edges, failed_set, survivors, n
    )

    # mask out the failed devices and re-run Borůvka from the survivors'
    # fragments; the pre-existing fragments are free
    adj = adjacency.copy()
    adj[list(failed_set), :] = False
    adj[:, list(failed_set)] = False
    result = distributed_boruvka(
        weights, adj, initial_edges=surviving_edges
    )
    return _repair_result(
        result, surviving_edges, removed_edges, fragments, failed_set
    )


def repair_after_failure_csr(
    tree_edges: Iterable[tuple[int, int]],
    failed: int | Iterable[int],
    budget,
) -> RepairResult:
    """Sparse :func:`repair_after_failure` over a link CSR — O(E) work.

    ``budget`` is a :class:`~repro.radio.sparse_link.SparseLinkBudget`;
    the survivors' link graph is filtered in CSR form (no dense mask is
    materialized) and Borůvka re-runs seeded with the surviving
    fragments.  Produces the same tree, bill and phase count as the
    dense function on the equivalent matrix inputs.
    """
    n = budget.n
    failed_set, survivors = _normalize_failed(failed, n)
    surviving_edges, removed_edges, fragments = _split_tree(
        tree_edges, failed_set, survivors, n
    )

    alive = np.ones(n, dtype=bool)
    alive[list(failed_set)] = False
    rows = budget.link_row_ids
    nbr = budget.link_indices
    keep = alive[rows] & alive[nbr]
    indptr, indices, (weight,) = csr_from_edges(
        n, rows[keep], nbr[keep], budget.link_power_dbm[keep]
    )
    result = distributed_boruvka_csr(
        n, indptr, indices, weight, initial_edges=surviving_edges
    )
    return _repair_result(
        result, surviving_edges, removed_edges, fragments, failed_set
    )
