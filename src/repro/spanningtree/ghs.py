"""Level-based GHS-style merge rule (ablation variant of Borůvka).

Gallager–Humblet–Spira's refinement of Borůvka adds fragment *levels*:

* two fragments at equal level that choose **each other's** connecting
  edge merge and the level increments;
* a lower-level fragment that targets a higher-level one is **absorbed**
  (the larger fragment's level is kept);
* an equal-level fragment whose target chose a different edge **waits**
  a round.

Levels bound how often any node changes fragment identity to O(log n),
the classic route to the O(n log n) message bound the paper cites when it
says "Keeping in mind GHS and Boruvkas algorithm".  The message accounting
matches :mod:`repro.spanningtree.boruvka` so the two merge rules can be
compared like-for-like in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spanningtree.boruvka import PhaseRecord, _edge_key
from repro.spanningtree.fragment import Fragment, FragmentSet
from repro.spanningtree.messages import MessageCounter, MessageKind


@dataclass
class GHSResult:
    """Outcome of a level-based GHS run."""

    edges: list[tuple[int, int]]
    phases: list[PhaseRecord]
    counter: MessageCounter
    fragments: list[Fragment]
    final_levels: dict[int, int]

    @property
    def converged(self) -> bool:
        return len(self.fragments) == 1

    @property
    def phase_count(self) -> int:
        return len(self.phases)

    @property
    def max_level(self) -> int:
        return max(self.final_levels.values(), default=0)


def distributed_ghs(
    weights: np.ndarray,
    adjacency: np.ndarray,
    *,
    max_rounds: int | None = None,
) -> GHSResult:
    """Run the level-based merge rule to a maximum spanning tree/forest."""
    w = np.asarray(weights, dtype=float)
    adj = np.asarray(adjacency, dtype=bool)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError(f"weights must be square, got {w.shape}")
    if adj.shape != w.shape:
        raise ValueError("adjacency shape must match weights")
    n = w.shape[0]
    if n == 0:
        raise ValueError("graph must have at least one node")
    if max_rounds is None:
        # levels grow by at most log2 n; waiting rounds add a linear slack
        max_rounds = 4 * max(1, int(np.ceil(np.log2(max(n, 2))))) + n

    base = np.where(adj, w, -np.inf)
    np.fill_diagonal(base, -np.inf)

    frags = FragmentSet(n)
    levels: dict[int, int] = {i: 0 for i in range(n)}
    counter = MessageCounter()
    phases: list[PhaseRecord] = []

    for round_idx in range(max_rounds):
        if frags.count == 1:
            break
        comp = np.fromiter(
            (frags.fragment_of(i) for i in range(n)), dtype=int, count=n
        )
        outgoing = np.where(comp[:, None] != comp[None, :], base, -np.inf)
        best_nbr = np.argmax(outgoing, axis=1)
        best_w = outgoing[np.arange(n), best_nbr]
        has_out = np.isfinite(best_w)
        if not has_out.any():
            break

        phase_counter = MessageCounter()
        phase_counter.add(MessageKind.TEST, int(has_out.sum()))

        fragments_before = frags.count
        mwoe: dict[int, tuple[tuple[float, int], int, int]] = {}
        for u in np.nonzero(has_out)[0]:
            u = int(u)
            v = int(best_nbr[u])
            key = _edge_key(float(best_w[u]), u, v, n)
            root = int(comp[u])
            cur = mwoe.get(root)
            if cur is None or key > cur[0]:
                mwoe[root] = (key, u, v)

        # fragments with no outgoing edge stay silent (same rule as Borůvka)
        for frag in frags.fragments():
            root = frags.fragment_of(frag.head)
            if root in mwoe:
                phase_counter.add(MessageKind.REPORT, frag.size)
                phase_counter.add(MessageKind.MERGE_ANNOUNCE, frag.size - 1)
                phase_counter.add(MessageKind.CONNECT, 1)

        # apply the GHS merge/absorb/wait rules on this round's choices
        chosen: list[tuple[int, int]] = []
        for root, (_key, u, v) in sorted(mwoe.items()):
            if frags.same_fragment(u, v):
                continue  # an earlier merge this round already joined them
            target_root = frags.fragment_of(v)
            my_level = levels[frags.fragment_of(u)]
            their_level = levels[target_root]
            if their_level > my_level:
                # absorb: join the higher-level fragment, keep its level
                frags.merge(u, v)
                levels[frags.fragment_of(u)] = their_level
                chosen.append((min(u, v), max(u, v)))
            elif their_level == my_level:
                their_choice = mwoe.get(target_root)
                if their_choice is not None:
                    _tk, tu, tv = their_choice
                    mutual = {min(u, v), max(u, v)} == {min(tu, tv), max(tu, tv)}
                    if mutual:
                        frags.merge(u, v)
                        levels[frags.fragment_of(u)] = my_level + 1
                        chosen.append((min(u, v), max(u, v)))
                # else: wait this round
            # their_level < my_level: the lower side initiates; we wait

        counter.merge(phase_counter)
        phases.append(
            PhaseRecord(
                phase=round_idx,
                fragments_before=fragments_before,
                fragments_after=frags.count,
                chosen_edges=tuple(sorted(chosen)),
                messages=phase_counter.as_dict(),
            )
        )

    final = frags.fragments()
    final_levels = {
        frag.head: levels[frags.fragment_of(frag.head)] for frag in final
    }
    return GHSResult(
        edges=frags.all_tree_edges(),
        phases=phases,
        counter=counter,
        fragments=final,
        final_levels=final_levels,
    )
