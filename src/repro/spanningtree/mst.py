"""Centralized maximum-spanning-tree reference (Kruskal).

The distributed Borůvka/GHS runs are validated against this oracle: on a
connected graph with *distinct* edge weights the maximum spanning tree is
unique, so the distributed result must match edge-for-edge.
"""

from __future__ import annotations

import numpy as np

from repro.spanningtree.unionfind import UnionFind


def _validate_weights(weights: np.ndarray) -> np.ndarray:
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError(f"weights must be square, got shape {w.shape}")
    if not np.allclose(w, w.T, equal_nan=True):
        raise ValueError("weight matrix must be symmetric")
    return w


def maximum_spanning_tree(
    weights: np.ndarray, adjacency: np.ndarray | None = None
) -> list[tuple[int, int]]:
    """Kruskal on negated weights → maximum spanning forest edge list.

    Parameters
    ----------
    weights:
        Symmetric ``(n, n)`` weight matrix (PS strength — higher is better).
    adjacency:
        Optional boolean mask of usable edges; defaults to all finite,
        positive-weight off-diagonal pairs.

    Returns a sorted list of ``(u, v)`` with u < v.  If the graph is
    disconnected the result is a spanning forest (fewer than n−1 edges).
    """
    w = _validate_weights(weights)
    n = w.shape[0]
    if adjacency is None:
        mask = np.isfinite(w)
    else:
        adjacency = np.asarray(adjacency, dtype=bool)
        if adjacency.shape != w.shape:
            raise ValueError("adjacency shape must match weights")
        mask = adjacency & np.isfinite(w)
    iu, ju = np.triu_indices(n, k=1)
    usable = mask[iu, ju]
    iu, ju = iu[usable], ju[usable]
    order = np.argsort(-w[iu, ju], kind="stable")

    uf = UnionFind(n)
    edges: list[tuple[int, int]] = []
    for k in order:
        u, v = int(iu[k]), int(ju[k])
        if uf.union(u, v):
            edges.append((u, v))
            if len(edges) == n - 1:
                break
    return sorted(edges)


def tree_weight(weights: np.ndarray, edges: list[tuple[int, int]]) -> float:
    """Total weight of an edge list under ``weights``."""
    w = _validate_weights(weights)
    return float(sum(w[u, v] for u, v in edges))


def is_spanning_tree(edges: list[tuple[int, int]], n: int) -> bool:
    """True iff ``edges`` form a spanning tree on n nodes (acyclic + connected)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(edges) != n - 1:
        return False
    uf = UnionFind(n)
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            return False
        if not uf.union(u, v):  # cycle
            return False
    return uf.components == 1
