"""Read-only fragment views over a live (churning) spanning tree.

The offline pipeline asks "what tree did the run build?" once, after
convergence.  A long-running host asks "which fragment is UE *x* in
right now?" thousands of times per second while churn keeps rewriting
the tree.  :class:`FragmentView` answers those queries from a frozen
snapshot: one union-find pass over the current tree edges at build
time, O(1) lookups afterwards.  The owning world rebuilds the view
lazily — only when its tree version actually moved — so query traffic
between churn events never re-walks the edge list.

Fragment identity is canonical: a fragment is named by its smallest
member id, which is stable across snapshot rebuilds as long as the
membership itself is unchanged.  That makes view output safe to embed
in golden conformance traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spanningtree.unionfind import UnionFind


@dataclass(frozen=True)
class FragmentInfo:
    """One fragment's membership at snapshot time."""

    fragment_id: int  # smallest member id (canonical name)
    size: int
    members: tuple[int, ...]  # sorted ascending


class FragmentView:
    """Frozen fragment decomposition of the active population.

    Parameters
    ----------
    n:
        Size of the device universe (ids ``0..n-1``).
    tree_edges:
        Current tree edges among active devices.
    active_mask:
        Boolean mask of length ``n``; inactive devices are not members
        of any fragment and lookups on them return ``None``.
    version:
        The owning world's tree version at build time, so callers can
        tell whether a cached view is still current.
    """

    def __init__(
        self,
        n: int,
        tree_edges: list[tuple[int, int]],
        active_mask: np.ndarray,
        *,
        version: int = 0,
    ) -> None:
        self.n = int(n)
        self.version = int(version)
        uf = UnionFind(self.n)
        for u, v in tree_edges:
            uf.union(u, v)
        members: dict[int, list[int]] = {}
        active = np.flatnonzero(active_mask)
        for dev in active.tolist():
            members.setdefault(uf.find(dev), []).append(dev)
        self._fragments: dict[int, FragmentInfo] = {}
        self._fragment_of: dict[int, int] = {}
        for group in members.values():
            group.sort()
            frag = FragmentInfo(
                fragment_id=group[0], size=len(group), members=tuple(group)
            )
            self._fragments[frag.fragment_id] = frag
            for dev in group:
                self._fragment_of[dev] = frag.fragment_id
        self.active_count = int(active.size)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of fragments over the active population."""
        return len(self._fragments)

    @property
    def largest(self) -> int:
        """Size of the largest fragment (0 when nobody is active)."""
        if not self._fragments:
            return 0
        return max(f.size for f in self._fragments.values())

    @property
    def is_spanning(self) -> bool:
        """True when every active device sits in one fragment."""
        return self.count <= 1

    def fragment_of(self, device: int) -> FragmentInfo | None:
        """The fragment containing ``device``, or ``None`` if inactive."""
        fid = self._fragment_of.get(device)
        if fid is None:
            return None
        return self._fragments[fid]

    def sizes(self) -> list[int]:
        """Fragment sizes, descending then by fragment id for ties."""
        return [
            f.size
            for f in sorted(
                self._fragments.values(),
                key=lambda f: (-f.size, f.fragment_id),
            )
        ]

    def fragments(self) -> list[FragmentInfo]:
        """All fragments ordered by canonical fragment id."""
        return [self._fragments[fid] for fid in sorted(self._fragments)]
