"""Protocol message kinds and counting for the tree-construction phase.

The paper's headline metric (Fig. 4) is *total control messages until
convergence*, so every protocol action that would put energy on the air is
counted here, split by kind and by RACH codec:

========================  =====  ==========================================
kind                      codec  meaning
========================  =====  ==========================================
``TEST``                  2      boundary node probes its heaviest edge
``REPORT``                2      member reports local MWOE to fragment head
``MERGE_ANNOUNCE``        2      head broadcasts chosen edge down the tree
``CONNECT``               2      connect request over the chosen edge
``SYNC_PULSE``            1      firefly PS (keep-alive) during sync
``DISCOVERY``             1      initial neighbour-discovery beacon
========================  =====  ==========================================
"""

from __future__ import annotations

import enum
from collections import Counter


class MessageKind(enum.Enum):
    """One class of over-the-air control message."""

    TEST = "test"
    REPORT = "report"
    MERGE_ANNOUNCE = "merge_announce"
    CONNECT = "connect"
    SYNC_PULSE = "sync_pulse"
    DISCOVERY = "discovery"

    @property
    def codec_index(self) -> int:
        """RACH codec the paper assigns this kind to (1 keep-alive, 2 merge)."""
        if self in (MessageKind.SYNC_PULSE, MessageKind.DISCOVERY):
            return 1
        return 2


class MessageCounter:
    """Tallies messages by kind; supports merging sub-counts."""

    def __init__(self) -> None:
        self._counts: Counter[MessageKind] = Counter()

    def add(self, kind: MessageKind, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._counts[kind] += count

    def count(self, kind: MessageKind) -> int:
        return self._counts[kind]

    @property
    def total(self) -> int:
        """All messages, both codecs — the Fig. 4 quantity."""
        return sum(self._counts.values())

    def total_for_codec(self, codec_index: int) -> int:
        return sum(
            v for k, v in self._counts.items() if k.codec_index == codec_index
        )

    def merge(self, other: "MessageCounter") -> None:
        self._counts.update(other._counts)

    def as_dict(self) -> dict[str, int]:
        return {kind.value: self._counts[kind] for kind in MessageKind}

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{k.value}={v}" for k, v in sorted(
                self._counts.items(), key=lambda kv: kv[0].value
            )
        )
        return f"MessageCounter({parts or 'empty'})"
