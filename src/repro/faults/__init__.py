"""Deterministic fault injection and protocol invariant checking.

* :class:`FaultConfig` — the fault-model parameters (loss probabilities,
  collision bursts, crash/stall schedules, clock drift), attachable to a
  :class:`~repro.core.config.PaperConfig` (``faults=...``) or parsed
  from a CLI spec string (``simulate --faults "crash=0.1,..."``).
* :class:`FaultPlan` — the materialized, counter-hashed decision
  source; dense and sparse backends draw identical faults from it.
* :class:`InvariantChecker` / :class:`InvariantViolation` — round-by-
  round validation that degraded runs still uphold the protocol's
  contracts (acyclic in-graph trees, monotone fragments, phases in
  [0, 1), message-accounting conservation).

See ``docs/robustness.md`` for the fault model and the reproducibility
guarantees.
"""

from repro.faults.invariants import (
    InvariantChecker,
    InvariantViolation,
    network_edge_exists,
)
from repro.faults.plan import FaultConfig, FaultPlan

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "InvariantChecker",
    "InvariantViolation",
    "network_edge_exists",
]
