"""Deterministic, seed-reproducible fault-injection plans.

Real D2D populations are not the clean radio the paper simulates: beacons
are missed (half-duplex turnarounds, deep fades), RACH preambles collide
in bursts, devices stall or die mid-protocol, and free-running clocks
drift (the FPGA measurements of pulse-coupled sync in arXiv:1408.0652 and
the systematic miss probabilities of arXiv:1405.4217).  This module
injects those imperfections **deterministically**: every fault decision
is a counter hash (:mod:`repro.radio.chanhash` style) — a pure function
of a run key and the *identity* of the event being decided —

* beacon loss:      ``f(key, event, tx, rx)``
* PS loss:          ``f(key, event, rx)``
* RACH collision:   ``f(key, burst, device)``   (bursty: one decision
  per ``collision_burst_periods`` periods)
* crash / stall:    ``f(key, device)``          (schedule drawn up front)
* clock drift:      ``f(key, device)``          (clipped normal factor)
* event drop:       ``f(key, seq)``             (engine callbacks)

so dense and sparse execution layouts draw **identical** faults in any
evaluation order, and a faulty run is bitwise reproducible across repeats
and backends (``tests/test_sparse_parity.py``).  The plan key derives
purely from ``config.seed`` — no generator stream is consumed — so
enabling a plan with all probabilities zero perturbs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.radio.chanhash import (
    derive_key,
    directed_code,
    hashed_uniform,
    splitmix64,
)

_U64 = np.uint64

#: Fault-stream salts — disjoint from the channel salts in
#: :mod:`repro.radio.chanhash` so fault and channel draws never share a
#: hash input.
SALT_FAULT_KEY = _U64(0x464C5459_4B455959)
SALT_CRASH = _U64(0x464C5459_43525348)
SALT_CRASH_TIME = _U64(0x464C5459_43525354)
SALT_STALL = _U64(0x464C5459_53544C4C)
SALT_STALL_TIME = _U64(0x464C5459_53544C54)
SALT_DRIFT_U1 = _U64(0x464C5459_44524631)
SALT_DRIFT_U2 = _U64(0x464C5459_44524632)
SALT_BEACON_LOSS = _U64(0x464C5459_42434E4C)
SALT_PS_LOSS = _U64(0x464C5459_50534C53)
SALT_RACH_COLLISION = _U64(0x464C5459_52414348)
SALT_EVENT_DROP = _U64(0x464C5459_44524F50)

#: ``from_spec`` shorthand → field-name aliases.
_SPEC_ALIASES = {
    "collision": "rach_collision",
    "drift": "drift_std",
    "burst": "collision_burst_periods",
    "backoff": "max_backoff_periods",
}


@dataclass(frozen=True)
class FaultConfig:
    """Fault-model parameters (all default to "off").

    Probabilities are per decision: ``beacon_loss`` per decoded
    (event, tx, rx) beacon, ``ps_loss`` per (event, receiver) sync
    instant, ``rach_collision`` per (device, burst) of
    ``collision_burst_periods`` beacon periods, ``crash``/``stall`` per
    device (with the time drawn uniformly inside the respective window),
    ``event_drop`` per engine callback.  ``drift_std`` is the relative
    standard deviation of per-device free-running periods (clipped at
    ±3σ).
    """

    beacon_loss: float = 0.0
    ps_loss: float = 0.0
    rach_collision: float = 0.0
    collision_burst_periods: int = 4
    max_backoff_periods: int = 8
    crash: float = 0.0
    crash_window_ms: float = 20_000.0
    stall: float = 0.0
    stall_window_ms: float = 20_000.0
    stall_duration_ms: float = 500.0
    drift_std: float = 0.0
    event_drop: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "beacon_loss",
            "ps_loss",
            "rach_collision",
            "crash",
            "stall",
            "event_drop",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.collision_burst_periods < 1:
            raise ValueError("collision_burst_periods must be >= 1")
        if self.max_backoff_periods < 0:
            raise ValueError("max_backoff_periods must be >= 0")
        if self.crash_window_ms <= 0 or self.stall_window_ms <= 0:
            raise ValueError("fault windows must be positive")
        if self.stall_duration_ms <= 0:
            raise ValueError("stall_duration_ms must be positive")
        if not 0.0 <= self.drift_std < 1.0 / 3.0:
            raise ValueError(
                "drift_std must be in [0, 1/3) so clipped factors stay positive"
            )

    @property
    def active(self) -> bool:
        """True when any fault channel can actually fire."""
        return (
            self.beacon_loss > 0
            or self.ps_loss > 0
            or self.rach_collision > 0
            or self.crash > 0
            or self.stall > 0
            or self.drift_std > 0
            or self.event_drop > 0
        )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultConfig":
        """Parse a CLI-style spec: ``"beacon_loss=0.1,crash=0.2,drift=1e-3"``.

        Keys are field names (or the aliases ``collision``, ``drift``,
        ``burst``, ``backoff``); values are coerced to the field's type.
        """
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict[str, float | int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            key = _SPEC_ALIASES.get(key, key)
            if key not in known:
                options = ", ".join(sorted(set(known) | set(_SPEC_ALIASES)))
                raise ValueError(
                    f"unknown fault spec key {key!r} (known: {options})"
                )
            try:
                coerce = int if "int" in str(known[key]) else float
                kwargs[key] = coerce(value.strip())
            except ValueError as exc:
                raise ValueError(
                    f"fault spec value for {key!r} is not numeric: {value!r}"
                ) from exc
        return cls(**kwargs)

    def to_spec(self) -> str:
        """Render the non-default fields as a :meth:`from_spec` string.

        Round-trips: ``FaultConfig.from_spec(cfg.to_spec()) == cfg``.
        Used by the conformance layer to stamp golden traces with the
        exact fault model they were recorded under.
        """
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value}")
        return ",".join(parts)


class FaultPlan:
    """Materialized fault schedule for one ``(key, config, n)`` triple.

    Per-device crash/stall schedules and drift factors are precomputed;
    per-event decisions (:meth:`beacon_lost`, :meth:`ps_lost`,
    :meth:`rach_collided`, :meth:`event_dropped`) are evaluated lazily by
    counter hash.  The plan holds no mutable state, so the same plan can
    feed a dense and a sparse run and yield identical decisions.
    """

    def __init__(self, key: int, config: FaultConfig, n: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.key = int(key)
        self.config = config
        self.n = int(n)
        ids = np.arange(n, dtype=np.uint64)

        u = hashed_uniform(ids, derive_key(key, SALT_CRASH))
        t = hashed_uniform(ids, derive_key(key, SALT_CRASH_TIME))
        self.crash_time_ms = np.where(
            u < config.crash, t * config.crash_window_ms, np.inf
        )

        u = hashed_uniform(ids, derive_key(key, SALT_STALL))
        t = hashed_uniform(ids, derive_key(key, SALT_STALL_TIME))
        self.stall_start_ms = np.where(
            u < config.stall, t * config.stall_window_ms, np.inf
        )
        self.stall_end_ms = self.stall_start_ms + config.stall_duration_ms

        if config.drift_std > 0:
            u1 = hashed_uniform(ids, derive_key(key, SALT_DRIFT_U1))
            u2 = hashed_uniform(ids, derive_key(key, SALT_DRIFT_U2))
            z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
            self.period_factor = 1.0 + config.drift_std * np.clip(z, -3.0, 3.0)
        else:
            self.period_factor = np.ones(n)

        self._k_beacon = derive_key(key, SALT_BEACON_LOSS)
        self._k_ps = derive_key(key, SALT_PS_LOSS)
        self._k_rach = derive_key(key, SALT_RACH_COLLISION)
        self._k_drop = derive_key(key, SALT_EVENT_DROP)

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config) -> "FaultPlan | None":
        """Plan for a :class:`~repro.core.config.PaperConfig` — or ``None``.

        The key is a pure hash of ``config.seed``: no generator stream is
        consumed, so fault-free runs are bit-identical with or without
        this call, and dense/sparse backends derive the same plan.
        """
        fc = getattr(config, "faults", None)
        if fc is None or not fc.active:
            return None
        key = int(splitmix64(_U64(config.seed % (2**64)) ^ SALT_FAULT_KEY))
        return cls(key, fc, config.n_devices)

    # ------------------------------------------------------------------
    @property
    def has_drift(self) -> bool:
        return self.config.drift_std > 0

    def dead_by(self, t_ms: float) -> np.ndarray:
        """Boolean (n,): device has crashed at or before ``t_ms``."""
        return self.crash_time_ms <= t_ms

    def stalled_at(self, t_ms: float) -> np.ndarray:
        """Boolean (n,): device is inside its stall window at ``t_ms``."""
        return (self.stall_start_ms <= t_ms) & (t_ms < self.stall_end_ms)

    def beacon_lost(
        self, event: int | np.ndarray, tx: np.ndarray, rx: np.ndarray
    ) -> np.ndarray:
        """Per-(event, tx, rx) beacon-decode erasure decisions.

        ``event`` may be a per-edge array (batch kernels) broadcasting
        against ``tx``/``rx``; elements hash independently, so batched
        decisions equal scalar per-event ones bitwise.
        """
        if self.config.beacon_loss <= 0:
            return np.zeros(np.broadcast(tx, rx).shape, dtype=bool)
        sub = splitmix64(self._k_beacon ^ np.asarray(event, dtype=np.uint64))
        return hashed_uniform(directed_code(tx, rx), sub) < self.config.beacon_loss

    def ps_lost(self, event: int, rx: np.ndarray) -> np.ndarray:
        """Per-(event, receiver) sync-pulse erasure decisions."""
        if self.config.ps_loss <= 0:
            return np.zeros(np.shape(rx), dtype=bool)
        sub = splitmix64(self._k_ps ^ _U64(event))
        return hashed_uniform(np.asarray(rx, dtype=np.uint64), sub) < (
            self.config.ps_loss
        )

    def rach_collided(self, period: int, devices: np.ndarray) -> np.ndarray:
        """Per-(burst, device) preamble-collision decisions.

        One decision covers ``collision_burst_periods`` consecutive
        periods, so collisions arrive in bursts — the regime exponential
        backoff exists for.
        """
        if self.config.rach_collision <= 0:
            return np.zeros(np.shape(devices), dtype=bool)
        burst = int(period) // self.config.collision_burst_periods
        sub = splitmix64(self._k_rach ^ _U64(burst))
        return hashed_uniform(np.asarray(devices, dtype=np.uint64), sub) < (
            self.config.rach_collision
        )

    def event_dropped(self, seq: int) -> bool:
        """Per-callback engine drop decision (hashed on the event seq)."""
        if self.config.event_drop <= 0:
            return False
        u = hashed_uniform(_U64(seq), self._k_drop)
        return bool(u < self.config.event_drop)

    def __repr__(self) -> str:
        crashes = int(np.isfinite(self.crash_time_ms).sum())
        stalls = int(np.isfinite(self.stall_start_ms).sum())
        return (
            f"FaultPlan(n={self.n}, crashes={crashes}, stalls={stalls}, "
            f"key={self.key:#x})"
        )
