"""Machine-checked protocol invariants.

Fault injection (:mod:`repro.faults.plan`) is only useful if degraded
runs can be *validated*: a run that survives a crash by producing a
cyclic "tree" or by double-billing repair messages is worse than one
that aborts.  :class:`InvariantChecker` encodes the properties every run
must preserve, faults or not:

* **phases** — every active oscillator phase lies in ``[0, 1)`` after
  each avalanche instant (devices whose clock is frozen by a stall are
  excluded while frozen);
* **tree** — the produced tree edges are acyclic and every edge is a
  real proximity-graph link;
* **fragments** — the Borůvka fragment count is monotone non-increasing
  across phases (absent churn), and consecutive phases agree on it;
* **message conservation** — the ``messages_total`` accounted through
  :meth:`repro.obs.Observability.account_messages` equals the
  :class:`~repro.core.results.RunResult` total (one accounting path).

Violations raise a structured :class:`InvariantViolation` carrying the
invariant name, the offending round index and a context dict — so a CI
failure names the exact round that went wrong.  ``corrupt_phase_round``
is a test-only hook that perturbs the *checked copy* of one round's
phases, proving end to end that a corrupted run is caught and named.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.spanningtree.unionfind import UnionFind


class InvariantViolation(RuntimeError):
    """A protocol invariant failed, with the offending round's trace."""

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        round_index: int | None = None,
        context: dict | None = None,
    ) -> None:
        self.invariant = invariant
        self.round_index = round_index
        self.detail = detail
        self.context = dict(context or {})
        where = f" at round {round_index}" if round_index is not None else ""
        super().__init__(f"invariant {invariant!r} violated{where}: {detail}")


def network_edge_exists(network) -> Callable[[int, int], bool]:
    """Proximity-graph membership test that never densifies.

    Dense networks answer from the adjacency matrix; sparse networks
    binary-search the link CSR (rows are sorted by neighbour id).
    """
    if network.is_sparse:
        sb = network.sparse_budget
        indptr = sb.link_indptr
        indices = sb.link_indices

        def exists(u: int, v: int) -> bool:
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            pos = lo + int(np.searchsorted(indices[lo:hi], v))
            return pos < hi and int(indices[pos]) == v

        return exists
    adjacency = network.adjacency
    return lambda u, v: bool(adjacency[u, v])


class InvariantChecker:
    """Validates protocol invariants round by round.

    Parameters
    ----------
    corrupt_phase_round:
        TEST-ONLY: when set, the checked *copy* of that phase round is
        perturbed out of ``[0, 1)`` so the checker provably raises and
        names the round.  Production state is never touched.
    """

    def __init__(self, *, corrupt_phase_round: int | None = None) -> None:
        self.corrupt_phase_round = corrupt_phase_round
        self.rounds_checked = 0

    # ------------------------------------------------------------------
    def check_phases(
        self,
        t_ms: float,
        phases: np.ndarray,
        active: np.ndarray | None = None,
        *,
        atol: float = 0.0,
    ) -> None:
        """Every active phase must lie in ``[0, 1)`` at instant ``t_ms``.

        ``atol`` absorbs float round-off at the interval boundaries (the
        kernel computes raw phases from subtracted fire times, which can
        land a few ulps outside) without masking genuine corruption.
        """
        phases = np.asarray(phases, dtype=float)
        if active is not None:
            vals = phases[np.asarray(active, dtype=bool)].copy()
        else:
            vals = phases.copy()
        round_index = self.rounds_checked
        self.rounds_checked += 1
        if self.corrupt_phase_round == round_index and vals.size:
            vals[0] += 1.5  # test-only perturbation of the checked copy
        bad = ~np.isfinite(vals) | (vals < -atol) | (vals >= 1.0 + atol)
        if bad.any():
            worst = float(vals[bad][0])
            raise InvariantViolation(
                "phase_in_unit_interval",
                f"{int(bad.sum())} phase(s) outside [0, 1) at "
                f"t={t_ms:.3f} ms (first offender {worst:.6f})",
                round_index=round_index,
                context={"time_ms": float(t_ms), "offenders": int(bad.sum())},
            )

    # ------------------------------------------------------------------
    def check_tree(
        self,
        tree_edges: Iterable[tuple[int, int]],
        n: int,
        edge_exists: Callable[[int, int], bool] | None = None,
    ) -> None:
        """Tree edges must be valid, acyclic, and in the proximity graph."""
        uf = UnionFind(n)
        for idx, (u, v) in enumerate(tree_edges):
            if not (0 <= u < n and 0 <= v < n) or u == v:
                raise InvariantViolation(
                    "tree_edge_valid",
                    f"edge ({u}, {v}) is not a valid node pair for n={n}",
                    round_index=idx,
                )
            if edge_exists is not None and not edge_exists(u, v):
                raise InvariantViolation(
                    "tree_edge_in_graph",
                    f"edge ({u}, {v}) is not a proximity-graph link",
                    round_index=idx,
                )
            if not uf.union(u, v):
                raise InvariantViolation(
                    "tree_acyclic",
                    f"edge ({u}, {v}) closes a cycle",
                    round_index=idx,
                )

    # ------------------------------------------------------------------
    def check_fragments(self, phases: Sequence) -> None:
        """Fragment counts must be monotone non-increasing across phases."""
        prev_after: int | None = None
        for rec in phases:
            if rec.fragments_after > rec.fragments_before:
                raise InvariantViolation(
                    "fragments_monotone",
                    f"fragment count grew {rec.fragments_before} → "
                    f"{rec.fragments_after}",
                    round_index=rec.phase,
                )
            if prev_after is not None and rec.fragments_before != prev_after:
                raise InvariantViolation(
                    "fragments_continuous",
                    f"phase starts with {rec.fragments_before} fragments "
                    f"but the previous phase ended with {prev_after}",
                    round_index=rec.phase,
                )
            prev_after = rec.fragments_after

    # ------------------------------------------------------------------
    def check_message_conservation(self, result, snapshot: dict | None = None) -> None:
        """obs ``messages_total`` must equal ``RunResult.messages``."""
        snap = snapshot if snapshot is not None else result.metrics
        metric = (snap or {}).get("messages_total")
        if metric is None:
            raise InvariantViolation(
                "message_conservation",
                "no messages_total metric in the run's snapshot",
            )
        total = 0.0
        for sample in metric["samples"]:
            if sample["labels"].get("algorithm") == result.algorithm:
                total += sample["value"]
        if int(round(total)) != result.messages:
            raise InvariantViolation(
                "message_conservation",
                f"obs messages_total={int(round(total))} != "
                f"RunResult.messages={result.messages} "
                f"for algorithm {result.algorithm!r}",
                context={"obs_total": total, "result_total": result.messages},
            )

    # ------------------------------------------------------------------
    def check_result(self, result, network) -> None:
        """Full post-run bundle: tree validity + message conservation."""
        self.check_tree(
            result.tree_edges,
            network.n,
            edge_exists=network_edge_exists(network),
        )
        self.check_message_conservation(result)
