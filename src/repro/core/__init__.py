"""Core library: configuration, network assembly and the two algorithms.

* :class:`~repro.core.config.PaperConfig` — Table I parameters + protocol
  knobs;
* :class:`~repro.core.network.D2DNetwork` — placement, channel, proximity
  graph and RSSI weights for one (config, seed);
* :class:`~repro.core.st.STSimulation` — the proposed tree-based
  distributed firefly algorithm (Algorithms 1–3);
* :class:`~repro.core.fst.FSTSimulation` — the FST baseline [17];
* :class:`~repro.core.pulsesync.PulseSyncKernel` — the shared vectorized
  pulse-coupled synchronization kernel.
"""

from repro.core.beacon import BeaconDiscovery, BeaconResult, top_k_required
from repro.core.churn import ChurnEvent, ChurnSession
from repro.core.config import PAPER_DENSITY_PER_M2, PaperConfig
from repro.core.device import Device, make_devices
from repro.core.fst import FSTSimulation, heavy_edge_forest, stitch_forest
from repro.core.network import D2DNetwork
from repro.core.pulsesync import (
    PulseSyncKernel,
    PulseSyncResult,
    TelemetrySample,
)
from repro.core.results import RunResult
from repro.core.st import STSimulation

__all__ = [
    "BeaconDiscovery",
    "BeaconResult",
    "ChurnEvent",
    "ChurnSession",
    "D2DNetwork",
    "Device",
    "FSTSimulation",
    "PAPER_DENSITY_PER_M2",
    "PaperConfig",
    "PulseSyncKernel",
    "PulseSyncResult",
    "RunResult",
    "STSimulation",
    "TelemetrySample",
    "heavy_edge_forest",
    "make_devices",
    "stitch_forest",
    "top_k_required",
]
