"""Simulation configuration.

:class:`PaperConfig` defaults reproduce Table I exactly:

=========================  ==========================================
Device power               23 dBm
Threshold                  −95 dBm
Device density             50 devices in 100 m × 100 m
Fast fading                UMi (NLOS) → Rayleigh
Shadowing std dev          10 dB
Time slot                  1 ms
Propagation model          PL = 4.35 + 25·log10(d) if d < 6 m,
                           PL = 40.0 + 40·log10(d) otherwise
=========================  ==========================================

The remaining fields parameterize the protocols (oscillator period,
coupling, refractory, convergence window) — quantities the paper uses but
does not tabulate; defaults are chosen per §III's references ([13], [19])
and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Literal

from repro.faults.plan import FaultConfig

#: Table I device density: 50 devices per 100 m × 100 m.
PAPER_DENSITY_PER_M2 = 50.0 / (100.0 * 100.0)


@dataclass(frozen=True)
class PaperConfig:
    """Full experiment configuration with Table I defaults."""

    # ----- Table I -----------------------------------------------------
    n_devices: int = 50
    area_side_m: float = 100.0
    tx_power_dbm: float = 23.0
    threshold_dbm: float = -95.0
    shadowing_sigma_db: float = 10.0
    slot_ms: float = 1.0
    pathloss_model: Literal["paper", "logdistance", "freespace"] = "paper"
    fading_model: Literal["rayleigh", "none"] = "rayleigh"

    # ----- RSSI ranging (§III eqs 6–12) --------------------------------
    #: Path-loss exponent the *receiver* assumes when inverting RSSI
    #: (paper: 2 indoor, 4 outdoor; outdoor adopted).
    rssi_exponent: float = 4.0
    rssi_reference_loss_db: float = 40.0
    rssi_reference_distance_m: float = 1.0

    # ----- Pulse-coupled oscillator (§III eqs 3–5) ----------------------
    #: Free-running period T in slots (fires every T ms at 1 ms slots).
    period_slots: int = 100
    #: Dissipation factor a of eq. (5).
    dissipation: float = 3.0
    #: Pulse strength ε of eq. (5); with dissipation > 0 this yields
    #: α > 1, β > 0, the Mirollo–Strogatz convergence regime.
    epsilon: float = 0.08
    #: Post-fire deaf window in slots (Werner-Allen's echo-storm fix).
    refractory_slots: int = 1
    #: Convergence: all devices fired within this many slots of each other.
    sync_window_slots: int = 2

    # ----- Protocol / experiment ---------------------------------------
    collision_policy: Literal["tolerant", "capture", "destructive"] = "tolerant"
    #: Initial neighbour-discovery window in periods (both algorithms pay it).
    discovery_periods: int = 3
    #: A neighbour only *must* be discovered when its mean PS power clears
    #: the detection threshold by this margin — links fading in and out of
    #: detectability are not part of either protocol's deliverable.
    discovery_margin_db: float = 5.0
    #: Discovery beacons randomize over this many orthogonal RACH
    #: preambles (LTE PRACH exposes 64; D2D PS gets a small dedicated
    #: pool).  Same-slot beacons on different preambles do not collide.
    beacon_preambles: int = 8
    #: FFA keep-alive/ranking rounds each fragment runs per Borůvka phase
    #: (Algorithm 1 line 5); they ride RACH1 concurrently with the phase's
    #: control traffic, so they add messages but no extra slots.
    ffa_rounds_per_phase: int = 2
    #: Fragment merge rule: plain Borůvka (default) or level-based GHS
    #: (the paper cites both: "Keeping in mind GHS and Boruvkas algorithm").
    merge_rule: Literal["boruvka", "ghs"] = "boruvka"
    #: Execution path: ``"dense"`` (O(n²) matrices), ``"sparse"``
    #: (grid + CSR, O(n + E)), ``"batch"`` (CSR layout with whole-array
    #: per-period kernels for the 50k–100k tier), or ``"auto"`` (sparse
    #: from ``sparse_threshold_devices`` up, batch from
    #: ``batch_threshold_devices`` up).  All paths are seed-for-seed
    #: identical (tests/test_sparse_parity.py, tests/test_batch_parity.py).
    backend: Literal["auto", "dense", "sparse", "batch"] = "auto"
    #: ``auto`` switches to the sparse path at this many devices.
    sparse_threshold_devices: int = 1024
    #: ``auto`` switches from sparse to the batch path at this many
    #: devices (must not be below ``sparse_threshold_devices``).
    batch_threshold_devices: int = 16384
    #: Two-sided shadowing clip in units of sigma (bounds the candidate
    #: radius of the sparse path; applied identically on the dense path).
    shadow_clip_sigma: float = 3.0
    #: Hard cap on simulated time (ms).
    max_time_ms: float = 300_000.0
    #: Optional deterministic fault model (:mod:`repro.faults`); accepts
    #: a :class:`~repro.faults.plan.FaultConfig` or a spec string like
    #: ``"beacon_loss=0.1,crash=0.2"``.  ``None`` = perfect radio.
    faults: FaultConfig | None = None
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_devices < 2:
            raise ValueError(f"n_devices must be >= 2, got {self.n_devices}")
        if self.area_side_m <= 0:
            raise ValueError("area_side_m must be positive")
        if self.shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be >= 0")
        if self.slot_ms <= 0:
            raise ValueError("slot_ms must be positive")
        if self.period_slots < 2:
            raise ValueError("period_slots must be >= 2")
        if self.dissipation <= 0 or self.epsilon <= 0:
            raise ValueError(
                "dissipation and epsilon must be > 0 (Mirollo-Strogatz regime)"
            )
        if self.refractory_slots < 0:
            raise ValueError("refractory_slots must be >= 0")
        if self.sync_window_slots < 1:
            raise ValueError("sync_window_slots must be >= 1")
        if self.discovery_periods < 0:
            raise ValueError("discovery_periods must be >= 0")
        if self.max_time_ms <= 0:
            raise ValueError("max_time_ms must be positive")
        if self.rssi_exponent <= 0:
            raise ValueError("rssi_exponent must be positive")
        if self.discovery_margin_db < 0:
            raise ValueError("discovery_margin_db must be >= 0")
        if self.beacon_preambles < 1:
            raise ValueError("beacon_preambles must be >= 1")
        if self.ffa_rounds_per_phase < 0:
            raise ValueError("ffa_rounds_per_phase must be >= 0")
        if self.backend not in ("auto", "dense", "sparse", "batch"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.sparse_threshold_devices < 2:
            raise ValueError("sparse_threshold_devices must be >= 2")
        if self.batch_threshold_devices < self.sparse_threshold_devices:
            raise ValueError(
                "batch_threshold_devices must be >= sparse_threshold_devices"
            )
        if self.shadow_clip_sigma <= 0:
            raise ValueError("shadow_clip_sigma must be positive")
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", FaultConfig.from_spec(self.faults))
        elif self.faults is not None and not isinstance(self.faults, FaultConfig):
            raise ValueError(
                "faults must be a FaultConfig, a spec string, or None; "
                f"got {type(self.faults).__name__}"
            )

    # ------------------------------------------------------------------
    @property
    def period_ms(self) -> float:
        """Oscillator period T in ms."""
        return self.period_slots * self.slot_ms

    @property
    def refractory_ms(self) -> float:
        return self.refractory_slots * self.slot_ms

    @property
    def sync_window_ms(self) -> float:
        return self.sync_window_slots * self.slot_ms

    @property
    def density_per_m2(self) -> float:
        return self.n_devices / (self.area_side_m**2)

    @property
    def resolved_backend(self) -> Literal["dense", "sparse", "batch"]:
        """The execution path ``"auto"`` resolves to for this size."""
        if self.backend != "auto":
            return self.backend
        if self.n_devices >= self.batch_threshold_devices:
            return "batch"
        if self.n_devices >= self.sparse_threshold_devices:
            return "sparse"
        return "dense"

    def with_devices(self, n: int, *, keep_density: bool = True) -> "PaperConfig":
        """Scale the scenario to ``n`` devices.

        With ``keep_density`` (default) the area grows so Table I's density
        (50 devices / 100 m × 100 m) is preserved — the natural reading of
        the paper's "different scales" sweeps, and what produces multi-hop
        topologies at large n.
        """
        if keep_density:
            side = math.sqrt(n / PAPER_DENSITY_PER_M2)
            return replace(self, n_devices=n, area_side_m=side)
        return replace(self, n_devices=n)

    def with_seed(self, seed: int) -> "PaperConfig":
        return replace(self, seed=seed)

    def replace(self, **kwargs) -> "PaperConfig":
        """Functional update (dataclasses.replace passthrough)."""
        return replace(self, **kwargs)
