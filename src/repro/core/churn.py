"""Device churn: joins and failures against a live spanning tree.

Real D2D populations churn (the paper's §VI "realistic scenarios"): users
arrive, leave, and die mid-protocol.  :class:`ChurnSession` maintains the
heavy-edge tree of the *active* population incrementally:

* **join** — the newcomer beacons for a discovery window, then attaches
  over its heaviest link to an active device (one RACH2 handshake).  This
  is O(1) messages but *greedy*: it does not re-optimize the global tree,
  so the session tracks how far the incremental tree drifts from the
  maximum-spanning-tree oracle.
* **fail** — the tree is repaired with
  :func:`repro.spanningtree.repair.repair_after_failure`: surviving
  fragments are kept and only the re-merging phases are paid.
* **rebuild** — on demand, a full Borůvka run restores optimality; the
  session reports the message bill either way, so the repair-vs-rebuild
  trade-off is measurable.

Both backends are first-class: a sparse network's session works entirely
on the link CSR (filtered per the active set, never densified), with the
maximum-spanning-tree oracle computed by seeded Borůvka — on distinct
weights the Borůvka tree *is* the maximum spanning tree, so the oracle
matches the dense Kruskal result edge for edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fst import _tree_weight_for
from repro.core.network import D2DNetwork
from repro.radio.sparse_link import csr_from_edges
from repro.spanningtree.boruvka import (
    distributed_boruvka,
    distributed_boruvka_csr,
)
from repro.spanningtree.mst import maximum_spanning_tree, tree_weight
from repro.spanningtree.repair import (
    repair_after_failure,
    repair_after_failure_csr,
)

#: Messages a join costs: one discovery beacon round + RACH2 handshake.
JOIN_HANDSHAKE_MSGS = 2


@dataclass(frozen=True)
class ChurnEvent:
    """One join/fail/rebuild and its cost."""

    kind: str
    device: int
    messages: int
    succeeded: bool
    active_count: int
    #: current tree weight / oracle max-ST weight on the active subgraph
    #: (≥ 1.0 since weights are negative dBm sums; 1.0 = optimal)
    optimality_ratio: float


class ChurnSession:
    """Incremental tree maintenance over an (in)active device population.

    Parameters
    ----------
    network:
        The full device universe (positions/weights fixed); devices may be
        active or not.
    initially_active:
        Device ids active at start (default: all).  The initial tree is
        built with a full Borůvka run over the active subgraph.
    """

    def __init__(
        self,
        network: D2DNetwork,
        initially_active: set[int] | None = None,
    ) -> None:
        self.network = network
        n = network.n
        if initially_active is None:
            initially_active = set(range(n))
        if not initially_active:
            raise ValueError("need at least one initially active device")
        if not all(0 <= d < n for d in initially_active):
            raise ValueError("active ids out of range")
        self.active: set[int] = set(initially_active)
        self.events: list[ChurnEvent] = []
        self.tree_edges: list[tuple[int, int]] = []
        self._rebuild(initial=True)

    # ------------------------------------------------------------------
    def _masked_adjacency(self) -> np.ndarray:
        adj = self.network.adjacency.copy()
        inactive = [i for i in range(self.network.n) if i not in self.active]
        if inactive:
            adj[inactive, :] = False
            adj[:, inactive] = False
        return adj

    def _active_array(self) -> np.ndarray:
        mask = np.zeros(self.network.n, dtype=bool)
        mask[list(self.active)] = True
        return mask

    def _filtered_link_csr(self):
        """Active-subgraph link CSR (sparse backend; never densifies)."""
        budget = self.network.sparse_budget
        act = self._active_array()
        rows = budget.link_row_ids
        nbr = budget.link_indices
        keep = act[rows] & act[nbr]
        return csr_from_edges(
            self.network.n, rows[keep], nbr[keep], budget.link_power_dbm[keep]
        )

    def _optimality_ratio(self) -> float:
        if len(self.active) < 2:
            return 1.0
        if self.network.is_sparse:
            # On distinct weights the Borůvka tree is the maximum spanning
            # tree, so a seeded CSR run serves as the sparse oracle.
            indptr, indices, (w_e,) = self._filtered_link_csr()
            oracle = distributed_boruvka_csr(
                self.network.n, indptr, indices, w_e
            )
            oracle_w = _tree_weight_for(self.network, oracle.edges)
            mine = _tree_weight_for(self.network, self.tree_edges)
        else:
            w = self.network.weights
            oracle_edges = maximum_spanning_tree(w, self._masked_adjacency())
            oracle_w = tree_weight(w, oracle_edges)
            mine = tree_weight(w, self.tree_edges)
        if oracle_w == 0.0:
            return 1.0
        # weights are negative (dBm sums): mine/oracle >= 1 means heavier
        # total loss, i.e. worse; 1.0 is optimal
        return mine / oracle_w

    def _record(self, kind: str, device: int, messages: int, ok: bool) -> ChurnEvent:
        event = ChurnEvent(
            kind=kind,
            device=device,
            messages=messages,
            succeeded=ok,
            active_count=len(self.active),
            optimality_ratio=self._optimality_ratio(),
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def join(self, device: int) -> ChurnEvent:
        """Activate ``device`` and attach it over its heaviest active link."""
        if device in self.active:
            raise ValueError(f"device {device} is already active")
        if not 0 <= device < self.network.n:
            raise ValueError(f"device {device} out of range")
        if self.network.is_sparse:
            budget = self.network.sparse_budget
            lo = int(budget.link_indptr[device])
            hi = int(budget.link_indptr[device + 1])
            nbr = budget.link_indices[lo:hi]
            # only links to currently active devices count; neighbours are
            # sorted by id, so argmax ties break to the lowest id exactly
            # as the dense full-row argmax does
            act = self._active_array()
            w = np.where(act[nbr], budget.link_power_dbm[lo:hi], -np.inf)
            if w.size:
                pos = int(np.argmax(w))
                best = int(nbr[pos])
                ok = bool(np.isfinite(w[pos]))
            else:
                best = -1
                ok = False
        else:
            w = np.where(
                self.network.adjacency[device],
                self.network.weights[device],
                -np.inf,
            )
            # only links to currently active devices count
            w = np.where(self._active_array(), w, -np.inf)
            best = int(np.argmax(w))
            ok = bool(np.isfinite(w[best]))
        messages = self.network.config.discovery_periods + JOIN_HANDSHAKE_MSGS
        self.active.add(device)
        if ok:
            self.tree_edges.append((min(device, best), max(device, best)))
        return self._record("join", device, messages, ok)

    def fail(self, device: int) -> ChurnEvent:
        """Deactivate ``device`` and repair the tree around the hole."""
        if device not in self.active:
            raise ValueError(f"device {device} is not active")
        self.active.discard(device)
        inactive = {i for i in range(self.network.n) if i not in self.active}
        if self.network.is_sparse:
            result = repair_after_failure_csr(
                self.tree_edges,
                inactive | {device},
                self.network.sparse_budget,
            )
        else:
            result = repair_after_failure(
                self.tree_edges,
                inactive | {device},
                self.network.weights,
                self.network.adjacency,
            )
        self.tree_edges = result.tree_edges
        return self._record("fail", device, result.messages, result.repaired)

    def rebuild(self) -> ChurnEvent:
        """Full Borůvka rebuild on the active subgraph (restores optimality)."""
        messages = self._rebuild(initial=False)
        return self._record("rebuild", -1, messages, True)

    def _rebuild(self, *, initial: bool) -> int:
        if self.network.is_sparse:
            indptr, indices, (w_e,) = self._filtered_link_csr()
            result = distributed_boruvka_csr(
                self.network.n, indptr, indices, w_e
            )
        else:
            result = distributed_boruvka(
                self.network.weights, self._masked_adjacency()
            )
        # keep only edges among active devices (inactive are isolated)
        self.tree_edges = [
            e for e in result.edges if e[0] in self.active and e[1] in self.active
        ]
        return result.counter.total

    # ------------------------------------------------------------------
    @property
    def is_spanning(self) -> bool:
        """Does the current tree span the active devices?"""
        if len(self.active) <= 1:
            return True
        from repro.spanningtree.unionfind import UnionFind

        uf = UnionFind(self.network.n)
        for u, v in self.tree_edges:
            uf.union(u, v)
        roots = {uf.find(d) for d in self.active}
        return len(roots) == 1
