"""Device churn: joins and failures against a live spanning tree.

Real D2D populations churn (the paper's §VI "realistic scenarios"): users
arrive, leave, and die mid-protocol.  :class:`ChurnSession` maintains the
heavy-edge tree of the *active* population incrementally:

* **join** — the newcomer beacons for a discovery window, then attaches
  over its heaviest link to an active device (one RACH2 handshake).  This
  is O(1) messages but *greedy*: it does not re-optimize the global tree,
  so the session tracks how far the incremental tree drifts from the
  maximum-spanning-tree oracle.
* **fail** — the tree is repaired with
  :func:`repro.spanningtree.repair.repair_after_failure`: surviving
  fragments are kept and only the re-merging phases are paid.
* **rebuild** — on demand, a full Borůvka run restores optimality; the
  session reports the message bill either way, so the repair-vs-rebuild
  trade-off is measurable.

Both backends are first-class: a sparse network's session works entirely
on the link CSR (filtered per the active set, never densified), with the
maximum-spanning-tree oracle computed by seeded Borůvka — on distinct
weights the Borůvka tree *is* the maximum spanning tree, so the oracle
matches the dense Kruskal result edge for edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fst import _tree_weight_for
from repro.core.network import D2DNetwork
from repro.radio.sparse_link import csr_from_edges
from repro.spanningtree.boruvka import (
    distributed_boruvka,
    distributed_boruvka_csr,
)
from repro.spanningtree.mst import maximum_spanning_tree, tree_weight
from repro.spanningtree.repair import (
    repair_after_failure,
    repair_after_failure_csr,
)

#: Messages a join costs: one discovery beacon round + RACH2 handshake.
JOIN_HANDSHAKE_MSGS = 2


@dataclass(frozen=True)
class ChurnEvent:
    """One join/fail/rebuild and its cost."""

    kind: str
    device: int
    messages: int
    succeeded: bool
    active_count: int
    #: current tree weight / oracle max-ST weight on the active subgraph
    #: (≥ 1.0 since weights are negative dBm sums; 1.0 = optimal)
    optimality_ratio: float


class ChurnSession:
    """Incremental tree maintenance over an (in)active device population.

    Parameters
    ----------
    network:
        The full device universe (positions/weights fixed); devices may be
        active or not.
    initially_active:
        Device ids active at start (default: all).  The initial tree is
        built with a full Borůvka run over the active subgraph.
    track_optimality:
        When True (default) every event runs the maximum-spanning-tree
        oracle on the active subgraph and records the optimality ratio.
        The oracle is a full Borůvka run — O(E) per event — so
        long-running hosts that churn continuously (the steady-state
        discovery service) disable it; events then carry
        ``optimality_ratio = nan``.
    repair:
        Failure-repair strategy.  ``"optimal"`` (default) re-merges
        surviving fragments with a seeded Borůvka run over the full
        active link graph — O(E) per failure, optimal result.
        ``"greedy"`` reattaches each orphaned subtree over its heaviest
        outgoing link, mirroring the greedy join: the smaller
        components around the hole are discovered by balanced BFS (so a
        leaf failure costs O(degree), not O(n)) and each pays one
        discovery scan plus a RACH2 handshake.  Greedy repairs drift
        from the oracle exactly like greedy joins do — the trade
        :meth:`rebuild` exists to pay down — but keep per-event cost
        proportional to the damage, which is what lets the steady-state
        service churn a 100k-UE world continuously.
    """

    def __init__(
        self,
        network: D2DNetwork,
        initially_active: set[int] | None = None,
        *,
        track_optimality: bool = True,
        repair: str = "optimal",
    ) -> None:
        if repair not in ("optimal", "greedy"):
            raise ValueError(
                f"repair must be 'optimal' or 'greedy', got {repair!r}"
            )
        self.network = network
        self.track_optimality = track_optimality
        self.repair_mode = repair
        n = network.n
        if initially_active is None:
            initially_active = set(range(n))
        if not initially_active:
            raise ValueError("need at least one initially active device")
        if not all(0 <= d < n for d in initially_active):
            raise ValueError("active ids out of range")
        self.active: set[int] = set(initially_active)
        self.events: list[ChurnEvent] = []
        self.tree_edges: list[tuple[int, int]] = []
        #: tree adjacency and edge->position index kept in lockstep with
        #: ``tree_edges`` so greedy repairs can walk the forest and drop
        #: incident edges without scanning the edge list
        self._tree_adj: dict[int, set[int]] = {}
        self._edge_pos: dict[tuple[int, int], int] = {}
        self._active_np = np.zeros(n, dtype=bool)
        self._active_np[list(self.active)] = True
        self._rebuild(initial=True)

    # ------------------------------------------------------------------
    def _masked_adjacency(self) -> np.ndarray:
        adj = self.network.adjacency.copy()
        inactive = [i for i in range(self.network.n) if i not in self.active]
        if inactive:
            adj[inactive, :] = False
            adj[:, inactive] = False
        return adj

    def _active_array(self) -> np.ndarray:
        """Boolean active mask, maintained incrementally.

        Callers must treat the returned array as read-only (copy before
        mutating) — churning at scale cannot afford an O(n) rebuild per
        event.
        """
        return self._active_np

    def _filtered_link_csr(self):
        """Active-subgraph link CSR (sparse backend; never densifies)."""
        budget = self.network.sparse_budget
        act = self._active_array()
        rows = budget.link_row_ids
        nbr = budget.link_indices
        keep = act[rows] & act[nbr]
        return csr_from_edges(
            self.network.n, rows[keep], nbr[keep], budget.link_power_dbm[keep]
        )

    def _optimality_ratio(self) -> float:
        if not self.track_optimality:
            return float("nan")
        if len(self.active) < 2:
            return 1.0
        if self.network.is_sparse:
            # On distinct weights the Borůvka tree is the maximum spanning
            # tree, so a seeded CSR run serves as the sparse oracle.
            indptr, indices, (w_e,) = self._filtered_link_csr()
            oracle = distributed_boruvka_csr(
                self.network.n, indptr, indices, w_e
            )
            oracle_w = _tree_weight_for(self.network, oracle.edges)
            mine = _tree_weight_for(self.network, self.tree_edges)
        else:
            w = self.network.weights
            oracle_edges = maximum_spanning_tree(w, self._masked_adjacency())
            oracle_w = tree_weight(w, oracle_edges)
            mine = tree_weight(w, self.tree_edges)
        if oracle_w == 0.0:
            return 1.0
        # weights are negative (dBm sums): mine/oracle >= 1 means heavier
        # total loss, i.e. worse; 1.0 is optimal
        return mine / oracle_w

    def _record(self, kind: str, device: int, messages: int, ok: bool) -> ChurnEvent:
        event = ChurnEvent(
            kind=kind,
            device=device,
            messages=messages,
            succeeded=ok,
            active_count=len(self.active),
            optimality_ratio=self._optimality_ratio(),
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def join(self, device: int) -> ChurnEvent:
        """Activate ``device`` and attach it over its heaviest active link."""
        if device in self.active:
            raise ValueError(f"device {device} is already active")
        if not 0 <= device < self.network.n:
            raise ValueError(f"device {device} out of range")
        if self.network.is_sparse:
            budget = self.network.sparse_budget
            lo = int(budget.link_indptr[device])
            hi = int(budget.link_indptr[device + 1])
            nbr = budget.link_indices[lo:hi]
            # only links to currently active devices count; neighbours are
            # sorted by id, so argmax ties break to the lowest id exactly
            # as the dense full-row argmax does
            act = self._active_array()
            w = np.where(act[nbr], budget.link_power_dbm[lo:hi], -np.inf)
            if w.size:
                pos = int(np.argmax(w))
                best = int(nbr[pos])
                ok = bool(np.isfinite(w[pos]))
            else:
                best = -1
                ok = False
        else:
            w = np.where(
                self.network.adjacency[device],
                self.network.weights[device],
                -np.inf,
            )
            # only links to currently active devices count
            w = np.where(self._active_array(), w, -np.inf)
            best = int(np.argmax(w))
            ok = bool(np.isfinite(w[best]))
        messages = self.network.config.discovery_periods + JOIN_HANDSHAKE_MSGS
        self.active.add(device)
        self._active_np[device] = True
        if ok:
            self._edge_add((min(device, best), max(device, best)))
        return self._record("join", device, messages, ok)

    def fail(self, device: int) -> ChurnEvent:
        """Deactivate ``device`` and repair the tree around the hole."""
        if device not in self.active:
            raise ValueError(f"device {device} is not active")
        self.active.discard(device)
        self._active_np[device] = False
        if self.repair_mode == "greedy":
            messages, ok = self._fail_greedy(device)
            return self._record("fail", device, messages, ok)
        inactive = {i for i in range(self.network.n) if i not in self.active}
        if self.network.is_sparse:
            result = repair_after_failure_csr(
                self.tree_edges,
                inactive | {device},
                self.network.sparse_budget,
            )
        else:
            result = repair_after_failure(
                self.tree_edges,
                inactive | {device},
                self.network.weights,
                self.network.adjacency,
            )
        self.tree_edges = result.tree_edges
        self._rebuild_tree_adj()
        return self._record("fail", device, result.messages, result.repaired)

    # -- greedy repair --------------------------------------------------
    def _fail_greedy(self, device: int) -> tuple[int, bool]:
        """Local repair: reattach orphaned subtrees over heaviest links.

        Cost is proportional to the damage: the failed node's subtrees
        (all but the largest, found by balanced BFS over the tree
        adjacency) each pay one discovery scan of their members plus a
        RACH2 handshake.  Returns ``(messages, repaired)``.
        """
        seeds = sorted(self._tree_adj.pop(device, ()))
        for s in seeds:
            self._tree_adj[s].discard(device)
            self._edge_remove((min(device, s), max(device, s)))
        if len(seeds) <= 1:
            # leaf or isolated node: the forest is undamaged
            return 0, True
        orphans = self._orphan_components(seeds)
        messages = 0
        ok = True
        # targets: active devices outside every orphan (the unexplored
        # remainder and any pre-existing fragments); successfully
        # reattached orphans rejoin the target pool for later ones
        allowed = self._active_array().copy()
        for comp in orphans:
            allowed[comp] = False
        for comp in sorted(orphans, key=lambda c: c[0]):
            messages += len(comp) + JOIN_HANDSHAKE_MSGS
            pair = self._heaviest_outgoing(comp, allowed)
            if pair is None:
                ok = False
                continue
            u, v = pair
            self._edge_add((min(u, v), max(u, v)))
            allowed[comp] = True
        return messages, ok

    def _orphan_components(self, seeds: list[int]) -> list[list[int]]:
        """All-but-largest subtrees around a removed node, members sorted.

        Balanced BFS: always expand the currently smallest component, so
        the largest subtree is never fully traversed — it is whichever
        component is still unfinished when every other one has exhausted
        its frontier (ties broken to the lowest seed for determinism).
        """
        from collections import deque

        members: list[list[int]] = [[s] for s in seeds]
        frontiers = [deque([s]) for s in seeds]
        owner = {s: i for i, s in enumerate(seeds)}
        unfinished = set(range(len(seeds)))
        finished: list[int] = []
        while len(unfinished) > 1:
            idx = min(unfinished, key=lambda i: (len(members[i]), i))
            if not frontiers[idx]:
                unfinished.discard(idx)
                finished.append(idx)
                continue
            node = frontiers[idx].popleft()
            for nxt in sorted(self._tree_adj.get(node, ())):
                if nxt not in owner:
                    owner[nxt] = idx
                    members[idx].append(nxt)
                    frontiers[idx].append(nxt)
        return [sorted(members[i]) for i in sorted(finished)]

    def _heaviest_outgoing(
        self, comp: list[int], allowed: np.ndarray
    ) -> tuple[int, int] | None:
        """Heaviest link from ``comp`` into the allowed set, or None.

        Ties break to the lowest member id then lowest target id (members
        are sorted and argmax returns the first maximum).
        """
        if self.network.is_sparse:
            budget = self.network.sparse_budget
            best_w = -np.inf
            best: tuple[int, int] | None = None
            for m in comp:
                lo = int(budget.link_indptr[m])
                hi = int(budget.link_indptr[m + 1])
                if lo == hi:
                    continue
                nbr = budget.link_indices[lo:hi]
                w = np.where(allowed[nbr], budget.link_power_dbm[lo:hi], -np.inf)
                pos = int(np.argmax(w))
                if w[pos] > best_w:
                    best_w = float(w[pos])
                    best = (m, int(nbr[pos]))
            if best is None or not np.isfinite(best_w):
                return None
            return best
        rows = self.network.weights[comp]
        mask = self.network.adjacency[comp] & allowed[None, :]
        w = np.where(mask, rows, -np.inf)
        flat = int(np.argmax(w))
        r, t = divmod(flat, self.network.n)
        if not np.isfinite(w[r, t]):
            return None
        return (comp[r], t)

    def _edge_add(self, edge: tuple[int, int]) -> None:
        u, v = edge
        self._edge_pos[edge] = len(self.tree_edges)
        self.tree_edges.append(edge)
        self._tree_adj.setdefault(u, set()).add(v)
        self._tree_adj.setdefault(v, set()).add(u)

    def _edge_remove(self, edge: tuple[int, int]) -> None:
        """O(1) removal: swap the last edge into the vacated slot."""
        pos = self._edge_pos.pop(edge)
        last = self.tree_edges.pop()
        if pos < len(self.tree_edges):
            self.tree_edges[pos] = last
            self._edge_pos[last] = pos

    def _rebuild_tree_adj(self) -> None:
        adj: dict[int, set[int]] = {}
        pos: dict[tuple[int, int], int] = {}
        for i, (u, v) in enumerate(self.tree_edges):
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
            pos[(u, v)] = i
        self._tree_adj = adj
        self._edge_pos = pos

    def rebuild(self) -> ChurnEvent:
        """Full Borůvka rebuild on the active subgraph (restores optimality)."""
        messages = self._rebuild(initial=False)
        return self._record("rebuild", -1, messages, True)

    def _rebuild(self, *, initial: bool) -> int:
        if self.network.is_sparse:
            indptr, indices, (w_e,) = self._filtered_link_csr()
            result = distributed_boruvka_csr(
                self.network.n, indptr, indices, w_e
            )
        else:
            result = distributed_boruvka(
                self.network.weights, self._masked_adjacency()
            )
        # keep only edges among active devices (inactive are isolated)
        self.tree_edges = [
            e for e in result.edges if e[0] in self.active and e[1] in self.active
        ]
        self._rebuild_tree_adj()
        return result.counter.total

    # ------------------------------------------------------------------
    @property
    def is_spanning(self) -> bool:
        """Does the current tree span the active devices?"""
        if len(self.active) <= 1:
            return True
        from repro.spanningtree.unionfind import UnionFind

        uf = UnionFind(self.network.n)
        for u, v in self.tree_edges:
            uf.union(u, v)
        roots = {uf.find(d) for d in self.active}
        return len(roots) == 1
