"""Multi-service tree organization.

"Different codecs scheme indicate different services in the application"
(§III): each service interest owns a RACH codec pair, so service groups
can organize *independently* — one heavy-edge spanning tree per service,
built only over devices sharing that interest.  The alternative is one
global tree plus interest aggregation over it.

``run_multiservice`` builds both organizations on the same network and
reports the trade-off: per-service trees give each group a private,
shorter tree (and their codecs never interfere), but pay the tree
machinery once per service and can fail to span a sparse group; the
global tree amortizes construction across everyone and disseminates
interests for 2·(n−1) extra messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.network import D2DNetwork
from repro.discovery.aggregation import aggregate_interests
from repro.spanningtree.boruvka import distributed_boruvka


@dataclass
class ServiceTree:
    """One service group's private tree."""

    service: int
    members: list[int]
    tree_edges: list[tuple[int, int]]
    messages: int
    #: a sparse group may not be connected on the induced subgraph
    spanning: bool


@dataclass
class MultiServiceResult:
    """Both organizations, measured on the same network."""

    per_service: list[ServiceTree]
    per_service_messages: int
    global_messages: int
    global_tree_edges: list[tuple[int, int]] = field(repr=False, default_factory=list)

    @property
    def all_groups_spanned(self) -> bool:
        return all(t.spanning for t in self.per_service)

    @property
    def cheaper(self) -> str:
        """Which organization used fewer messages."""
        return (
            "per-service"
            if self.per_service_messages < self.global_messages
            else "global"
        )


def run_multiservice(
    network: D2DNetwork, services: np.ndarray
) -> MultiServiceResult:
    """Build per-service trees and the global-tree alternative.

    Parameters
    ----------
    network:
        The shared deployment (weights/adjacency).
    services:
        Per-device service id (length n).
    """
    services = np.asarray(services, dtype=int)
    n = network.n
    if services.shape != (n,):
        raise ValueError(f"services must have shape ({n},), got {services.shape}")
    if np.any(services < 0):
        raise ValueError("service ids must be >= 0")

    # --- organization A: one tree per service group -------------------
    trees: list[ServiceTree] = []
    per_service_total = 0
    for service in sorted(set(services.tolist())):
        members = np.nonzero(services == service)[0]
        if members.size < 2:
            trees.append(
                ServiceTree(
                    service=service,
                    members=[int(m) for m in members],
                    tree_edges=[],
                    messages=0,
                    spanning=True,  # nothing to connect
                )
            )
            continue
        mask = np.zeros(n, dtype=bool)
        mask[members] = True
        induced = network.adjacency & mask[:, None] & mask[None, :]
        result = distributed_boruvka(network.weights, induced)
        group_edges = [
            e for e in result.edges if mask[e[0]] and mask[e[1]]
        ]
        trees.append(
            ServiceTree(
                service=service,
                members=[int(m) for m in members],
                tree_edges=group_edges,
                messages=result.counter.total,
                spanning=len(group_edges) == members.size - 1,
            )
        )
        per_service_total += result.counter.total

    # --- organization B: one global tree + interest aggregation -------
    global_result = distributed_boruvka(network.weights, network.adjacency)
    head = global_result.fragments[0].head if global_result.fragments else 0
    dissemination = aggregate_interests(global_result.edges, services, head)
    global_total = global_result.counter.total + dissemination.messages

    return MultiServiceResult(
        per_service=trees,
        per_service_messages=per_service_total,
        global_messages=global_total,
        global_tree_edges=global_result.edges,
    )
