"""Result records shared by the FST and ST simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class RunResult:
    """One algorithm run on one topology.

    Attributes
    ----------
    algorithm:
        ``"st"`` (proposed) or ``"fst"`` (baseline).
    converged:
        Whether global synchronization was reached before ``max_time_ms``.
    time_ms:
        Convergence time — the Fig. 3 quantity.
    messages:
        Total control messages (all codecs) — the Fig. 4 quantity.
    message_breakdown:
        Messages by kind (sync pulses, discovery, merge traffic, ...).
    tree_edges:
        The spanning tree the run produced (empty if not applicable).
    extra:
        Algorithm-specific diagnostics (phase count, tree weight, ...).
    metrics:
        JSON-safe :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of
        the run's observability registry (counters/gauges/histograms).
        ``message_breakdown`` is derived from the same registry, so the
        two views cannot disagree.
    """

    algorithm: str
    n_devices: int
    seed: int
    converged: bool
    time_ms: float
    messages: int
    message_breakdown: dict[str, int] = field(default_factory=dict)
    tree_edges: list[tuple[int, int]] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.algorithm not in ("st", "fst"):
            raise ValueError(
                f"algorithm must be 'st' or 'fst', got {self.algorithm!r}"
            )
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if self.time_ms < 0:
            raise ValueError("time_ms must be >= 0")
        if self.messages < 0:
            raise ValueError("messages must be >= 0")

    @property
    def messages_per_device(self) -> float:
        return self.messages / self.n_devices

    def summary(self) -> str:
        """One-line human summary."""
        status = "converged" if self.converged else "TIMED OUT"
        return (
            f"{self.algorithm.upper()} n={self.n_devices} seed={self.seed}: "
            f"{status} at t={self.time_ms:.0f} ms with {self.messages} messages"
        )
