"""D2D network assembly: placement, channel, proximity graph, weights.

:class:`D2DNetwork` turns a :class:`~repro.core.config.PaperConfig` into
the concrete simulation inputs:

* uniform device placement in the square area,
* a :class:`~repro.radio.link.LinkBudget` over the configured channel,
* the proximity graph ``G(V, E)`` (edges where mean PS power clears the
  −95 dBm threshold),
* the PS-strength edge weights ("weight of edge is directly proportional
  to PS strength observed by nodes", §IV).

Disconnected placements are repaired by re-drawing (documented option) so
the spanning-tree algorithms always have a spanning tree to find; the
number of re-draws is recorded for honesty in sweep outputs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.config import PaperConfig
from repro.radio.fading import NoFading, RayleighFading
from repro.radio.link import LinkBudget
from repro.radio.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PaperPathLoss,
)
from repro.radio.rssi import RSSIRanging
from repro.radio.shadowing import LogNormalShadowing, NoShadowing
from repro.sim.random import RandomStreams

#: Give up re-drawing after this many disconnected placements.
MAX_PLACEMENT_ATTEMPTS = 50


def _pathloss_for(config: PaperConfig):
    if config.pathloss_model == "paper":
        return PaperPathLoss()
    if config.pathloss_model == "logdistance":
        return LogDistancePathLoss(
            exponent=config.rssi_exponent,
            reference_loss_db=config.rssi_reference_loss_db,
            reference_distance_m=config.rssi_reference_distance_m,
        )
    if config.pathloss_model == "freespace":
        return FreeSpacePathLoss()
    raise ValueError(f"unknown pathloss model {config.pathloss_model!r}")


class D2DNetwork:
    """Concrete network instance for one (config, seed) pair.

    Parameters
    ----------
    config:
        Scenario parameters.
    streams:
        Random-stream universe; derived from ``config.seed`` when omitted.
    require_connected:
        Re-draw placements until the proximity graph is connected
        (default True — both algorithms need a spanning tree to exist).
    """

    def __init__(
        self,
        config: PaperConfig,
        streams: RandomStreams | None = None,
        *,
        require_connected: bool = True,
    ) -> None:
        self.config = config
        self.streams = streams if streams is not None else RandomStreams(config.seed)
        self.pathloss = _pathloss_for(config)
        self.placement_attempts = 0

        placement_rng = self.streams.stream("placement")
        shadow_rng = self.streams.stream("shadowing")
        for _attempt in range(MAX_PLACEMENT_ATTEMPTS):
            self.placement_attempts += 1
            positions = placement_rng.uniform(
                0.0, config.area_side_m, size=(config.n_devices, 2)
            )
            if config.shadowing_sigma_db > 0:
                shadowing = LogNormalShadowing(
                    config.shadowing_sigma_db, shadow_rng
                )
            else:
                shadowing = NoShadowing()
            budget = LinkBudget(
                positions,
                self.pathloss,
                tx_power_dbm=config.tx_power_dbm,
                threshold_dbm=config.threshold_dbm,
                shadowing=shadowing,
                fading=self._make_fading(),
            )
            adjacency = budget.adjacency()
            if not require_connected or self._is_connected(adjacency):
                break
        else:
            raise RuntimeError(
                f"could not draw a connected topology in "
                f"{MAX_PLACEMENT_ATTEMPTS} attempts "
                f"(n={config.n_devices}, side={config.area_side_m:.0f} m)"
            )

        self.positions = positions
        self.link_budget = budget
        self.adjacency = adjacency & adjacency.T  # symmetric detectability
        np.fill_diagonal(self.adjacency, False)
        # PS-strength weights: mean of the two directions' rx power, so the
        # weight matrix is symmetric even though shadowing already is.
        self.weights = 0.5 * (budget.mean_rx_dbm + budget.mean_rx_dbm.T)
        self.ranging = RSSIRanging(
            LogDistancePathLoss(
                exponent=config.rssi_exponent,
                reference_loss_db=config.rssi_reference_loss_db,
                reference_distance_m=config.rssi_reference_distance_m,
            ),
            tx_power_dbm=config.tx_power_dbm,
            sigma_db=config.shadowing_sigma_db,
        )

    # ------------------------------------------------------------------
    def _make_fading(self):
        if self.config.fading_model == "rayleigh":
            return RayleighFading(self.streams.stream("fading"))
        return NoFading()

    @staticmethod
    def _is_connected(adjacency: np.ndarray) -> bool:
        sym = adjacency & adjacency.T
        g = nx.from_numpy_array(sym)
        return nx.is_connected(g)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.config.n_devices

    def graph(self) -> nx.Graph:
        """The proximity graph with PS-strength edge weights."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        iu, ju = np.nonzero(np.triu(self.adjacency, k=1))
        for u, v in zip(iu.tolist(), ju.tolist()):
            g.add_edge(u, v, weight=float(self.weights[u, v]))
        return g

    def degree_stats(self) -> dict[str, float]:
        """Mean/min/max degree of the proximity graph."""
        deg = self.adjacency.sum(axis=1)
        return {
            "mean": float(deg.mean()),
            "min": int(deg.min()),
            "max": int(deg.max()),
        }

    def hop_diameter(self) -> int:
        """Hop diameter of the proximity graph."""
        return int(nx.diameter(self.graph()))

    def true_distances(self) -> np.ndarray:
        return self.link_budget.distance_m

    def __repr__(self) -> str:
        return (
            f"D2DNetwork(n={self.n}, side={self.config.area_side_m:.0f} m, "
            f"attempts={self.placement_attempts})"
        )
