"""D2D network assembly: placement, channel, proximity graph, weights.

:class:`D2DNetwork` turns a :class:`~repro.core.config.PaperConfig` into
the concrete simulation inputs:

* uniform device placement in the square area,
* a link budget over the configured channel,
* the proximity graph ``G(V, E)`` (edges where mean PS power clears the
  −95 dBm threshold),
* the PS-strength edge weights ("weight of edge is directly proportional
  to PS strength observed by nodes", §IV).

Three execution backends share one construction contract
(``config.backend`` / ``config.resolved_backend``):

dense
    The original O(n²) pipeline — a full
    :class:`~repro.radio.link.LinkBudget` matrix, boolean adjacency, and
    weight matrix.
sparse
    The scale path: grid candidate generation plus a CSR
    :class:`~repro.radio.sparse_link.SparseLinkBudget`; nothing of size
    n² is allocated.  The dense-matrix views (``link_budget``,
    ``adjacency``, ``weights``) remain available as *lazy* properties
    that densify on first touch (``densified`` records that it happened)
    so legacy analysis code keeps working — hot paths must not touch
    them.
batch
    The 50k–100k tier: same CSR construction as sparse, but the hot
    loops run the whole-array kernels in :mod:`repro.core.batch`
    (vectorized per-period beacon decode, subset phase advancement,
    incremental fragment bookkeeping).  Bitwise-identical to sparse
    (``tests/test_batch_parity.py``, conformance goldens).

Channel randomness is counter-based (:mod:`repro.radio.chanhash`) in both
backends — shadowing a pure function of ``(key, link)``, fading of
``(key, event, tx, rx)`` — which is what makes the two backends
seed-for-seed identical (``tests/test_sparse_parity.py``).

Disconnected placements are repaired by re-drawing (documented option) so
the spanning-tree algorithms always have a spanning tree to find; the
number of re-draws is recorded for honesty in sweep outputs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.config import PaperConfig
from repro.radio.fading import HashedRayleighFading, NoFading
from repro.radio.link import LinkBudget
from repro.radio.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PaperPathLoss,
)
from repro.radio.rssi import RSSIRanging
from repro.radio.shadowing import HashedShadowing, NoShadowing
from repro.radio.sparse_link import SparseLinkBudget
from repro.sim.random import RandomStreams

#: Give up re-drawing after this many disconnected placements.
MAX_PLACEMENT_ATTEMPTS = 50


def _pathloss_for(config: PaperConfig):
    if config.pathloss_model == "paper":
        return PaperPathLoss()
    if config.pathloss_model == "logdistance":
        return LogDistancePathLoss(
            exponent=config.rssi_exponent,
            reference_loss_db=config.rssi_reference_loss_db,
            reference_distance_m=config.rssi_reference_distance_m,
        )
    if config.pathloss_model == "freespace":
        return FreeSpacePathLoss()
    raise ValueError(f"unknown pathloss model {config.pathloss_model!r}")


class D2DNetwork:
    """Concrete network instance for one (config, seed) pair.

    Parameters
    ----------
    config:
        Scenario parameters (including the execution backend).
    streams:
        Random-stream universe; derived from ``config.seed`` when omitted.
    require_connected:
        Re-draw placements until the proximity graph is connected
        (default True — both algorithms need a spanning tree to exist).
    """

    def __init__(
        self,
        config: PaperConfig,
        streams: RandomStreams | None = None,
        *,
        require_connected: bool = True,
    ) -> None:
        self.config = config
        self.streams = streams if streams is not None else RandomStreams(config.seed)
        self.pathloss = _pathloss_for(config)
        self.backend = config.resolved_backend
        self.placement_attempts = 0
        #: set when a sparse network materialized a dense view after all
        #: (legacy analysis fallback) — hot paths must keep this False
        self.densified = False

        placement_rng = self.streams.stream("placement")
        shadow_rng = self.streams.stream("shadowing")
        # both backends draw the same stream values in the same order —
        # one fading key up front, then (positions, shadow key) per attempt
        self.fading_key = int(self.streams.stream("fading").integers(0, 2**63))
        # the batch backend shares the sparse CSR construction — only the
        # kernels that consume it differ
        sparse = self.backend in ("sparse", "batch")
        for _attempt in range(MAX_PLACEMENT_ATTEMPTS):
            self.placement_attempts += 1
            positions = placement_rng.uniform(
                0.0, config.area_side_m, size=(config.n_devices, 2)
            )
            shadow_key = int(shadow_rng.integers(0, 2**63))
            shadowing = self._make_shadowing(shadow_key)
            budget_cls = SparseLinkBudget if sparse else LinkBudget
            budget = budget_cls(
                positions,
                self.pathloss,
                tx_power_dbm=config.tx_power_dbm,
                threshold_dbm=config.threshold_dbm,
                shadowing=shadowing,
                fading=self._make_fading(),
            )
            if sparse:
                connected = budget.is_connected()
            else:
                connected = self._is_connected(budget.adjacency())
            if not require_connected or connected:
                break
        else:
            raise RuntimeError(
                f"could not draw a connected topology in "
                f"{MAX_PLACEMENT_ATTEMPTS} attempts "
                f"(n={config.n_devices}, side={config.area_side_m:.0f} m)"
            )

        self.positions = positions
        self.shadow_key = shadow_key
        if sparse:
            self.sparse_budget: SparseLinkBudget | None = budget
            self._link_budget: LinkBudget | None = None
            self._adjacency: np.ndarray | None = None
            self._weights: np.ndarray | None = None
        else:
            self.sparse_budget = None
            self._link_budget = budget
            adjacency = budget.adjacency()
            self._adjacency = adjacency & adjacency.T  # symmetric detectability
            np.fill_diagonal(self._adjacency, False)
            # PS-strength weights: mean of the two directions' rx power, so
            # the weight matrix is symmetric even though shadowing already is.
            self._weights = 0.5 * (budget.mean_rx_dbm + budget.mean_rx_dbm.T)
        self.ranging = RSSIRanging(
            LogDistancePathLoss(
                exponent=config.rssi_exponent,
                reference_loss_db=config.rssi_reference_loss_db,
                reference_distance_m=config.rssi_reference_distance_m,
            ),
            tx_power_dbm=config.tx_power_dbm,
            sigma_db=config.shadowing_sigma_db,
        )

    # ------------------------------------------------------------------
    def _make_shadowing(self, key: int):
        if self.config.shadowing_sigma_db > 0:
            return HashedShadowing(
                self.config.shadowing_sigma_db,
                key,
                clip_sigma=self.config.shadow_clip_sigma,
            )
        return NoShadowing()

    def _make_fading(self):
        if self.config.fading_model == "rayleigh":
            return HashedRayleighFading(self.fading_key)
        return NoFading()

    @staticmethod
    def _is_connected(adjacency: np.ndarray) -> bool:
        sym = adjacency & adjacency.T
        g = nx.from_numpy_array(sym)
        return nx.is_connected(g)

    # ------------------------------------------------------------------
    @property
    def is_sparse(self) -> bool:
        return self.sparse_budget is not None

    @property
    def is_batch(self) -> bool:
        """True when the whole-array batch kernels should run."""
        return self.backend == "batch"

    def _densify(self) -> None:
        """Materialize the dense matrix views from a sparse network.

        Legacy fallback (O(n²) time and memory): same positions, same
        hashed channel keys, so the dense views are bitwise what the
        dense backend would have built.
        """
        budget = LinkBudget(
            self.positions,
            self.pathloss,
            tx_power_dbm=self.config.tx_power_dbm,
            threshold_dbm=self.config.threshold_dbm,
            shadowing=self._make_shadowing(self.shadow_key),
            fading=self._make_fading(),
        )
        adjacency = budget.adjacency()
        self._link_budget = budget
        self._adjacency = adjacency & adjacency.T
        np.fill_diagonal(self._adjacency, False)
        self._weights = 0.5 * (budget.mean_rx_dbm + budget.mean_rx_dbm.T)
        self.densified = True

    @property
    def link_budget(self) -> LinkBudget:
        """Dense link budget (lazy densify on a sparse network)."""
        if self._link_budget is None:
            self._densify()
        return self._link_budget

    @property
    def adjacency(self) -> np.ndarray:
        """Dense boolean proximity matrix (lazy densify on sparse)."""
        if self._adjacency is None:
            self._densify()
        return self._adjacency

    @property
    def weights(self) -> np.ndarray:
        """Dense PS-strength weight matrix (lazy densify on sparse)."""
        if self._weights is None:
            self._densify()
        return self._weights

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.config.n_devices

    def graph(self) -> nx.Graph:
        """The proximity graph with PS-strength edge weights."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        if self.is_sparse:
            sb = self.sparse_budget
            upper = sb.link_row_ids < sb.link_indices
            for u, v, w in zip(
                sb.link_row_ids[upper].tolist(),
                sb.link_indices[upper].tolist(),
                sb.link_power_dbm[upper].tolist(),
            ):
                g.add_edge(u, v, weight=w)
            return g
        iu, ju = np.nonzero(np.triu(self.adjacency, k=1))
        for u, v in zip(iu.tolist(), ju.tolist()):
            g.add_edge(u, v, weight=float(self.weights[u, v]))
        return g

    def degree_stats(self) -> dict[str, float]:
        """Mean/min/max degree of the proximity graph."""
        if self.is_sparse:
            deg = self.sparse_budget.degrees()
        else:
            deg = self.adjacency.sum(axis=1)
        return {
            "mean": float(deg.mean()),
            "min": int(deg.min()),
            "max": int(deg.max()),
        }

    def hop_diameter(self) -> int:
        """Hop diameter of the proximity graph."""
        return int(nx.diameter(self.graph()))

    def true_distances(self) -> np.ndarray:
        return self.link_budget.distance_m

    def __repr__(self) -> str:
        return (
            f"D2DNetwork(n={self.n}, side={self.config.area_side_m:.0f} m, "
            f"backend={self.backend}, attempts={self.placement_attempts})"
        )
