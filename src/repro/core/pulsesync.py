"""Vectorized event-driven pulse-coupled synchronization kernel.

This is the hot loop of both algorithms: a population of phase
oscillators (eqs 3–4) firing Proximity Signals over a radio graph, with
per-transmission fading and same-slot collision handling.  It advances
fire-instant to fire-instant (no per-slot stepping) and handles the
Mirollo–Strogatz *avalanche* — a pulse pushing receivers over threshold so
they fire in the same instant — as successive **waves**:

wave 0
    the oscillators whose phase naturally reached threshold;
wave k+1
    oscillators pushed to threshold by wave k's pulses.

Within one instant all transmissions share the slot and codec, so a
receiver integrates **at most one** phase jump per instant (the waves'
preambles superpose into a single detectable PS) — without this cap the
avalanche would recurse through the whole network in zero time, which no
radio can do.

Two reception channels are modelled, matching LTE RACH physics:

* **pulse detection** (energy): identical preambles superpose
  constructively, so under the default ``tolerant`` policy any detected
  superposition counts as one received pulse;
* **identity decoding** (payload): to learn *who* transmitted (neighbour
  discovery, RSSI bookkeeping) the receiver must decode the strongest
  copy against the superposition — the classic capture effect, needing
  ``capture_margin_db`` of SIR when several transmissions land together.

The split is what makes the FST baseline degrade at scale: synchronizing
helps pulse detection but ruins identity decoding, so mesh-wide neighbour
discovery stalls exactly when synchronization succeeds.  The kernel
optionally tracks decoding and can require a set of ordered pairs to be
decoded before declaring convergence (``required_decoding``).

Two interchangeable kernels share one run loop (:class:`_PulseSyncBase`):

* :class:`PulseSyncKernel` — the dense reference, ``(k, n)`` row slices
  of the mean-power matrix per wave;
* :class:`SparsePulseSyncKernel` — CSR coupling graph, O(edges-of-wave)
  per wave via segment reductions, with scratch arrays reused across
  waves.  Requires counter-based fading; with
  :class:`~repro.radio.fading.HashedRayleighFading` the two kernels are
  seed-for-seed identical because every fading value is a pure function
  of ``(key, event, tx, rx)`` and both kernels advance the same radio
  event counter (one event per avalanche wave).

A third kernel, :class:`repro.core.batch.BatchPulseSyncKernel`, subclasses
the sparse one for the ``batch`` backend: it advances phases on the
gathered eligible subset (O(|wave|) instead of O(n) per wave) — bitwise
identical because elementwise float ops commute with gathering.

The kernels are pure NumPy per wave (no per-node Python loops), following
the HPC guide's vectorization rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.obs import Observability
from repro.oscillator.prc import LinearPRC
from repro.oscillator.sync_metrics import (
    circular_spread,
    count_sync_groups,
    order_parameter,
)
from repro.radio.fading import NoFading
from repro.radio.sparse_link import csr_from_edges, gather_rows
from repro.sim.trace import TraceRecorder

#: Fire times closer than this (ms) are simultaneous (one instant).
TIE_EPS = 1e-9

#: Per-instant observer signature: ``(instant_index, time_ms, phases)``.
PhaseHook = Callable[[int, float, np.ndarray], None]

#: Bucket bounds (ms) for the sync-error histogram; the paper's sync
#: window is 2 ms and periods are O(100 ms).
SYNC_ERROR_BUCKETS_MS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

#: Bucket bounds for avalanche wave sizes (simultaneous transmitters).
WAVE_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(frozen=True)
class TelemetrySample:
    """One synchrony snapshot along a run."""

    time_ms: float
    order_parameter: float
    sync_groups: int
    fires_so_far: int


@dataclass
class PulseSyncResult:
    """Outcome of one synchronization run."""

    converged: bool
    time_ms: float
    messages: int
    fires: int
    instants: int
    final_spread_ms: float
    #: first time the sync window was met (NaN if never)
    sync_time_ms: float = float("nan")
    #: first time the decoding requirement was met (NaN if never/untracked)
    discovery_time_ms: float = float("nan")
    #: phases (fraction of period elapsed) at the end; full-length array
    #: with NaN at inactive nodes
    final_phase: np.ndarray | None = field(repr=False, default=None)
    #: decoded[i, j] — receiver i decoded sender j's identity (when tracked)
    decoded: np.ndarray | None = field(repr=False, default=None)
    #: sampled synchrony trajectory (when telemetry_interval_ms was set)
    telemetry: list[TelemetrySample] = field(repr=False, default_factory=list)


class _PulseSyncBase:
    """Shared avalanche run loop; subclasses supply :meth:`_wave_reception`.

    The loop advances a radio **event counter** — one event per avalanche
    wave — and hands it to the reception hook.  Counter-based fading
    models key their draws on it, which is what keeps the dense and
    sparse kernels on identical channel realizations.
    """

    def _init_common(
        self,
        n: int,
        prc: LinearPRC,
        *,
        period_ms: float,
        threshold_dbm: float,
        refractory_ms: float,
        sync_window_ms: float,
        fading,
        collision_policy: str,
        capture_margin_db: float,
    ) -> None:
        if period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if collision_policy not in ("tolerant", "capture", "destructive"):
            raise ValueError(f"unknown collision policy {collision_policy!r}")
        self.n = int(n)
        self.prc = prc
        self.period_ms = float(period_ms)
        self.threshold_dbm = float(threshold_dbm)
        self.refractory_ms = float(refractory_ms)
        self.sync_window_ms = float(sync_window_ms)
        self.fading = fading if fading is not None else NoFading()
        self.collision_policy = collision_policy
        self.capture_margin_db = float(capture_margin_db)
        self._hashed_fading = hasattr(self.fading, "link_db")
        self._stream_fading = not self._hashed_fading and not isinstance(
            self.fading, NoFading
        )

    def _wave_reception(
        self, firers: np.ndarray, event: int, need_decoding: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve one wave: ``(heard[n], decoded_sender[n])``.

        ``heard`` is the boolean pulse-detection vector under the
        configured collision policy; ``decoded_sender[i]`` is the sender
        id receiver ``i`` captured (−1 when nothing decodable — may skip
        the capture computation entirely when ``need_decoding`` is false
        and the policy does not depend on it).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator,
        *,
        active: np.ndarray | None = None,
        initial_phases: np.ndarray | None = None,
        start_time_ms: float = 0.0,
        max_time_ms: float = 300_000.0,
        require_sync: bool = True,
        required_decoding: np.ndarray | None = None,
        trace: TraceRecorder | None = None,
        telemetry_interval_ms: float | None = None,
        obs: Observability | None = None,
        obs_labels: dict[str, str] | None = None,
        faults: FaultPlan | None = None,
        invariants: InvariantChecker | None = None,
        phase_hook: "PhaseHook | None" = None,
    ) -> PulseSyncResult:
        """Run until the convergence conditions hold (or time runs out).

        Parameters
        ----------
        require_sync:
            Demand all active devices fire within the sync window.
        required_decoding:
            Optional ``(n, n)`` boolean matrix of ordered (receiver,
            sender) pairs that must be identity-decoded before the run
            counts as converged.  Decoding is tracked iff this is given.
        initial_phases:
            Fractions of the period already elapsed (phase 0.9 fires
            soon); drawn uniformly when omitted.
        telemetry_interval_ms:
            When set, a :class:`TelemetrySample` (order parameter, group
            count) is recorded about every this-many ms of simulated time
            — the convergence *trajectory*, not just the endpoint.
        obs:
            Optional :class:`~repro.obs.Observability` bundle.  When set,
            the kernel bills ``ps_tx_total``, observes wave sizes and the
            sync-error spread, and records periodic ``sync`` probe
            samples (at the bundle's probe interval unless
            ``telemetry_interval_ms`` overrides it).  When ``trace`` is
            unset the bundle's trace recorder (if any) is used.  When
            ``None`` (the default) the hot loop is untouched.
        obs_labels:
            Labels attached to every metric the kernel records (e.g.
            ``{"algorithm": "st", "stage": "trim"}``).
        faults:
            Optional :class:`~repro.faults.plan.FaultPlan`.  Applies
            per-device clock drift (individual free-running periods),
            crash schedules (a crashed oscillator falls permanently
            silent and leaves the active set), stall windows (the clock
            freezes for the stall duration and the device is deaf while
            frozen) and per-(event, receiver) PS loss.  ``None`` leaves
            the loop byte-identical to before.
        invariants:
            Optional :class:`~repro.faults.invariants.InvariantChecker`;
            when set, raw phases are validated against ``[0, 1)`` after
            every avalanche instant (stall-frozen clocks excluded).
        phase_hook:
            Optional ``(instant_index, time_ms, phases)`` observer called
            after every avalanche instant with the full-length phase
            vector (NaN at inactive nodes).  Pure observation — the hook
            sees copies derived from loop state and the loop draws no
            randomness for it, so enabling it cannot perturb the run.
            The conformance layer uses it to record per-round phase
            digests for golden traces.
        """
        n = self.n
        if active is None:
            active = np.ones(n, dtype=bool)
        else:
            active = np.asarray(active, dtype=bool)
            if active.shape != (n,):
                raise ValueError(f"active must have shape ({n},)")
        if faults is not None:
            active = active.copy()  # crash handling deactivates in place
        n_active = int(active.sum())
        if n_active == 0:
            raise ValueError("at least one node must be active")
        if not require_sync and required_decoding is None:
            raise ValueError(
                "at least one convergence condition is required "
                "(require_sync or required_decoding)"
            )

        if initial_phases is None:
            phases = rng.uniform(0.0, 1.0, size=n)
        else:
            phases = np.asarray(initial_phases, dtype=float)
            if phases.shape != (n,):
                raise ValueError(f"initial_phases must have shape ({n},)")
            if np.any((phases[active] < 0) | (phases[active] >= 1.0)):
                raise ValueError("phases must lie in [0, 1)")

        track_decoding = required_decoding is not None
        if track_decoding:
            required = np.asarray(required_decoding, dtype=bool).copy()
            if required.shape != (n, n):
                raise ValueError(f"required_decoding must be ({n}, {n})")
            np.fill_diagonal(required, False)
            decoded = np.zeros((n, n), dtype=bool)
            remaining = int(required.sum())
        else:
            required = None
            decoded = None
            remaining = 0

        # per-device free-running period; the no-drift broadcast view is
        # bitwise identical to the scalar arithmetic it replaces
        if faults is not None and faults.has_drift:
            period_of = self.period_ms * faults.period_factor
        else:
            period_of = np.broadcast_to(np.float64(self.period_ms), (n,))

        inactive = ~active
        next_fire = start_time_ms + (1.0 - phases) * period_of
        next_fire[inactive] = np.inf
        last_fire = np.full(n, -np.inf)
        refractory_until = np.full(n, -np.inf)
        fired_once = np.zeros(n, dtype=bool)

        messages = 0
        fires = 0
        instants = 0
        event = 0
        sync_time = float("nan")
        discovery_time = float("nan")
        deadline = start_time_ms + max_time_ms
        samples: list[TelemetrySample] = []
        if telemetry_interval_ms is not None and telemetry_interval_ms <= 0:
            raise ValueError("telemetry_interval_ms must be positive")
        if trace is None and obs is not None:
            trace = obs.trace
        bus = obs.bus if obs is not None else None
        labels = obs_labels or {}
        crash_count = 0
        stall_count = 0
        ps_loss_count = 0
        if faults is not None:
            crash_time = faults.crash_time_ms
            stall_start = faults.stall_start_ms
            stall_end = faults.stall_end_ms
            stall_applied = np.zeros(n, dtype=bool)
            ids_u64 = np.arange(n, dtype=np.uint64)

        def _record_faults() -> None:
            if obs is None or faults is None:
                return
            counter = obs.metrics.counter(
                "faults_injected_total",
                help="fault events injected by the active FaultPlan",
                unit="events",
            )
            if crash_count:
                counter.inc(crash_count, kind="crash", **labels)
            if stall_count:
                counter.inc(stall_count, kind="stall", **labels)
            if ps_loss_count:
                counter.inc(ps_loss_count, kind="ps_loss", **labels)

        if obs is not None:
            # bound views resolve the label key once, outside the wave loop
            ps_counter = obs.metrics.counter(
                "ps_tx_total",
                help="sync pulse (PS) transmissions",
                unit="messages",
            ).bound(**labels)
            wave_hist = obs.metrics.histogram(
                "wave_size",
                buckets=WAVE_SIZE_BUCKETS,
                help="simultaneous transmitters per avalanche wave",
                unit="transmitters",
            ).bound(**labels)
        else:
            ps_counter = None
            wave_hist = None
        # sample at the probe cadence when observed, even without an
        # explicit telemetry request
        sample_interval = telemetry_interval_ms
        if sample_interval is None and obs is not None:
            sample_interval = obs.probes.interval_ms
        next_sample = (
            start_time_ms + sample_interval
            if sample_interval is not None
            else float("inf")
        )

        while True:
            if faults is not None:
                # devices whose crash time precedes the next instant die
                # silently; re-check because each removal can move the min
                while True:
                    t_peek = min(float(next_fire.min()), deadline)
                    dying = active & (crash_time <= t_peek + TIE_EPS)
                    if not dying.any():
                        break
                    crash_count += int(dying.sum())
                    if trace is not None:
                        for f in np.nonzero(dying)[0]:
                            trace.emit(
                                float(crash_time[f]), "crash", node=int(f),
                                **labels,
                            )
                    if bus is not None:
                        bus.publish(
                            "faults",
                            t_peek,
                            labels,
                            crashed=int(dying.sum()),
                            active=int(active.sum()) - int(dying.sum()),
                        )
                    active[dying] = False
                    next_fire[dying] = np.inf
                if not active.any():
                    _record_faults()
                    return self._finish(
                        False, deadline, messages, fires, instants, next_fire,
                        active, last_fire, fired_once, sync_time,
                        discovery_time, decoded, samples, obs, labels,
                    )
                # a fire instant inside a stall window: the clock freezes
                # for the stall duration (applied once per device)
                stall_hit = (
                    active
                    & ~stall_applied
                    & (next_fire >= stall_start)
                    & (next_fire < stall_end)
                )
                if stall_hit.any():
                    stall_count += int(stall_hit.sum())
                    stall_applied |= stall_hit
                    next_fire[stall_hit] += (
                        stall_end[stall_hit] - stall_start[stall_hit]
                    )
            t = float(next_fire.min())
            if not np.isfinite(t) or t > deadline:
                t = min(t, deadline)
                _record_faults()
                return self._finish(
                    False, t, messages, fires, instants, next_fire, active,
                    last_fire, fired_once, sync_time, discovery_time, decoded,
                    samples, obs, labels,
                )
            instants += 1
            fired_now = np.zeros(n, dtype=bool)
            prc_done = np.zeros(n, dtype=bool)
            wave = active & (next_fire <= t + TIE_EPS)

            while wave.any():
                firers = np.nonzero(wave)[0]
                k = firers.size
                fires += k
                messages += k
                if ps_counter is not None:
                    ps_counter.inc(k)
                    wave_hist.observe(k)
                if trace is not None:
                    for f in firers:
                        trace.emit(t, "ps_tx", node=int(f), **labels)
                fired_now |= wave

                heard, dec_sender = self._wave_reception(
                    firers, event, track_decoding
                )
                if faults is not None:
                    # stall deafness + per-(event, rx) PS erasure; both are
                    # functions of identity, so dense/sparse agree exactly
                    lost_ps = faults.ps_lost(event, ids_u64)
                    ps_loss_count += int(np.count_nonzero(heard & lost_ps))
                    deaf = (stall_start <= t) & (t < stall_end)
                    drop = lost_ps | deaf
                    if drop.any():
                        heard = heard & ~drop
                        dec_sender = np.where(drop, -1, dec_sender)
                event += 1

                if track_decoding:
                    # transmitters are half-duplex: no decoding while firing
                    rx_ok = (dec_sender >= 0) & active & ~fired_now
                    rx_idx = np.nonzero(rx_ok)[0]
                    if rx_idx.size:
                        tx_idx = dec_sender[rx_idx]
                        newly = required[rx_idx, tx_idx] & ~decoded[
                            rx_idx, tx_idx
                        ]
                        remaining -= int(newly.sum())
                        decoded[rx_idx, tx_idx] = True
                        if remaining == 0 and np.isnan(discovery_time):
                            discovery_time = t
                eligible = (
                    heard
                    & active
                    & ~fired_now
                    & ~prc_done
                    & (refractory_until <= t + TIE_EPS)
                )
                if not eligible.any():
                    wave = np.zeros(n, dtype=bool)
                    continue
                prc_done |= eligible
                wave = self._apply_prc(eligible, next_fire, period_of, t)

            last_fire[fired_now] = t
            fired_once |= fired_now
            next_fire[fired_now] = t + period_of[fired_now]
            refractory_until[fired_now] = t + self.refractory_ms

            if invariants is not None:
                # raw (unclipped) phases; stall-frozen clocks sit beyond
                # one full period ahead and are excluded while frozen
                checkable = active & (next_fire <= t + period_of)
                raw = 1.0 - (next_fire - t) / period_of
                invariants.check_phases(t, raw, active=checkable, atol=1e-9)

            if phase_hook is not None:
                phase_hook(instants - 1, t, self._phases_at(t, next_fire, active))

            if t >= next_sample:
                phases_now = self._phases_at(t, next_fire, active)
                vals = np.clip(phases_now[active], 0.0, 1.0)
                r_now = order_parameter(vals)
                groups_now = count_sync_groups(vals)
                samples.append(
                    TelemetrySample(
                        time_ms=t,
                        order_parameter=r_now,
                        sync_groups=groups_now,
                        fires_so_far=fires,
                    )
                )
                if obs is not None:
                    spread_ms = circular_spread(vals) * self.period_ms
                    obs.metrics.histogram(
                        "sync_error_ms",
                        buckets=SYNC_ERROR_BUCKETS_MS,
                        help="phase spread across active devices",
                        unit="ms",
                    ).observe(spread_ms, **labels)
                    obs.probes.record(
                        t,
                        "sync",
                        force=True,
                        order_parameter=r_now,
                        sync_groups=groups_now,
                        spread_ms=spread_ms,
                        fires=fires,
                    )
                    if bus is not None:
                        bus.publish(
                            "sync",
                            t,
                            labels,
                            spread_ms=spread_ms,
                            order_parameter=r_now,
                            sync_groups=groups_now,
                            fires=fires,
                            active=int(active.sum()),
                        )
                # anchor the next sample from now, so consecutive samples
                # are always at least one interval apart
                next_sample = t + sample_interval  # type: ignore[operator]

            sync_ok = True
            if require_sync or np.isnan(sync_time):
                if fired_once[active].all():
                    spread = float(
                        last_fire[active].max() - last_fire[active].min()
                    )
                    sync_ok = spread <= self.sync_window_ms
                else:
                    sync_ok = False
                if sync_ok and np.isnan(sync_time):
                    sync_time = t
            decode_ok = (not track_decoding) or remaining == 0
            if (sync_ok or not require_sync) and decode_ok:
                _record_faults()
                return self._finish(
                    True, t, messages, fires, instants, next_fire, active,
                    last_fire, fired_once, sync_time, discovery_time, decoded,
                    samples, obs, labels,
                )

    # ------------------------------------------------------------------
    def _apply_prc(
        self,
        eligible: np.ndarray,
        next_fire: np.ndarray,
        period_of: np.ndarray,
        t: float,
    ) -> np.ndarray:
        """Advance eligible receivers through the PRC; returns next wave.

        Mutates ``next_fire`` in place for receivers the pulse moved but
        did not push over threshold, and returns the boolean mask of
        those it did (the next avalanche wave).  The batch kernel
        overrides this with a gather/scatter subset variant — elementwise
        float ops on a gathered subset are bitwise what the full-array
        masked form computes, so both produce identical runs.
        """
        theta = 1.0 - (next_fire - t) / period_of
        theta = np.clip(theta, 0.0, 1.0)
        new_theta = np.minimum(self.prc.alpha * theta + self.prc.beta, 1.0)
        to_fire = eligible & (new_theta >= 1.0)
        adjust = eligible & ~to_fire
        next_fire[adjust] = t + (1.0 - new_theta[adjust]) * period_of[adjust]
        return to_fire

    # ------------------------------------------------------------------
    def _phases_at(
        self, t: float, next_fire: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """Phases (fraction of period elapsed) at time ``t``; NaN inactive."""
        out = np.full(self.n, np.nan)
        remaining_t = np.clip(next_fire[active] - t, 0.0, self.period_ms)
        out[active] = 1.0 - remaining_t / self.period_ms
        return out

    def _finish(
        self,
        converged: bool,
        t: float,
        messages: int,
        fires: int,
        instants: int,
        next_fire: np.ndarray,
        active: np.ndarray,
        last_fire: np.ndarray,
        fired_once: np.ndarray,
        sync_time: float,
        discovery_time: float,
        decoded: np.ndarray | None,
        telemetry: list[TelemetrySample],
        obs: Observability | None = None,
        obs_labels: dict[str, str] | None = None,
    ) -> PulseSyncResult:
        if active.any() and fired_once[active].all():
            spread = float(last_fire[active].max() - last_fire[active].min())
        else:
            spread = float("inf")
        out = self._phases_at(t, next_fire, active)
        if obs is not None:
            labels = obs_labels or {}
            obs.metrics.counter(
                "kernel_instants_total",
                help="avalanche instants processed by the sync kernel",
            ).inc(instants, **labels)
            if np.isfinite(spread):
                obs.metrics.histogram(
                    "sync_error_ms",
                    buckets=SYNC_ERROR_BUCKETS_MS,
                    help="phase spread across active devices",
                    unit="ms",
                ).observe(spread, **labels)
                obs.probes.record(
                    t, "sync", force=True, spread_ms=spread, fires=fires
                )
        return PulseSyncResult(
            converged=converged,
            time_ms=t,
            messages=messages,
            fires=fires,
            instants=instants,
            final_spread_ms=spread,
            sync_time_ms=sync_time,
            discovery_time_ms=discovery_time,
            final_phase=out,
            decoded=decoded,
            telemetry=telemetry,
        )


class PulseSyncKernel(_PulseSyncBase):
    """Dense reference kernel over a fixed radio environment.

    Parameters
    ----------
    mean_rx_dbm:
        ``(n, n)`` mean received power matrix (dBm), −inf on the diagonal.
    adjacency:
        Boolean coupling mask — mesh for FST, tree edges for ST fragments.
        A pulse only affects receivers that are (a) adjacent and (b) above
        threshold after fading.
    prc:
        Linear PRC (eq. 5).  ``LinearPRC(1.0, 0.0)`` disables coupling —
        useful for pure (unsynchronized) discovery beaconing.
    period_ms, refractory_ms, sync_window_ms, threshold_dbm:
        Oscillator and convergence parameters (see PaperConfig).
    fading:
        Per-transmission fading model; ``NoFading()`` for oracle runs.
        Counter-based models (``link_db``) draw per ``(event, tx, rx)``;
        stream models (``sample_db``) draw a fresh ``(k, n)`` block.
    collision_policy:
        Pulse-detection rule for superposed same-instant transmissions:
        ``"tolerant"`` (any detected superposition is one pulse — the
        paper's assumption and RACH preamble physics), ``"capture"``
        (strongest must clear the SIR margin) or ``"destructive"``
        (any collision destroys the pulse).  Identity decoding always
        uses the capture rule regardless of this policy.
    """

    def __init__(
        self,
        mean_rx_dbm: np.ndarray,
        adjacency: np.ndarray,
        prc: LinearPRC,
        *,
        period_ms: float,
        threshold_dbm: float,
        refractory_ms: float = 1.0,
        sync_window_ms: float = 2.0,
        fading=None,
        collision_policy: str = "tolerant",
        capture_margin_db: float = 6.0,
    ) -> None:
        mean_rx_dbm = np.asarray(mean_rx_dbm, dtype=float)
        adjacency = np.asarray(adjacency, dtype=bool)
        if mean_rx_dbm.shape != adjacency.shape or mean_rx_dbm.ndim != 2:
            raise ValueError("mean_rx_dbm and adjacency must be equal square")
        self.mean_rx = mean_rx_dbm
        self.adjacency = adjacency
        self._init_common(
            mean_rx_dbm.shape[0],
            prc,
            period_ms=period_ms,
            threshold_dbm=threshold_dbm,
            refractory_ms=refractory_ms,
            sync_window_ms=sync_window_ms,
            fading=fading,
            collision_policy=collision_policy,
            capture_margin_db=capture_margin_db,
        )
        self._node_ids = np.arange(self.n, dtype=np.int64)

    # ------------------------------------------------------------------
    def _wave_reception(
        self, firers: np.ndarray, event: int, need_decoding: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        n = self.n
        k = firers.size
        power = self.mean_rx[firers]
        if self._hashed_fading:
            power = power + self.fading.link_db(
                event, firers[:, None], self._node_ids[None, :]
            )
        elif self._stream_fading:
            power = power + self.fading.sample_db((k, n))
        det = (power >= self.threshold_dbm) & self.adjacency[firers]
        return self._resolve_wave(det, power, firers, need_decoding)

    def _resolve_wave(
        self,
        det: np.ndarray,
        power: np.ndarray,
        firers: np.ndarray,
        need_decoding: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-receiver pulse detection and identity decoding for one wave."""
        n = self.n
        counts = det.sum(axis=0)
        any_heard = counts >= 1

        if not need_decoding and self.collision_policy != "capture":
            if self.collision_policy == "tolerant":
                heard = any_heard
            else:  # destructive
                heard = counts == 1
            return heard, np.full(n, -1, dtype=int)

        # identity decoding (capture rule, always)
        masked = np.where(det, power, -np.inf)
        strongest_row = np.argmax(masked, axis=0)
        strongest_pow = masked[strongest_row, np.arange(n)]
        linear = np.where(det, np.power(10.0, power / 10.0), 0.0)
        total = linear.sum(axis=0)
        signal = np.where(
            any_heard, np.power(10.0, strongest_pow / 10.0), 0.0
        )
        noise = np.maximum(total - signal, 1e-30)
        with np.errstate(divide="ignore", invalid="ignore"):
            sir_db = 10.0 * np.log10(np.maximum(signal, 1e-300) / noise)
        decodable = any_heard & (
            (counts == 1) | (sir_db >= self.capture_margin_db)
        )
        decoded_sender = np.where(
            decodable, firers[strongest_row], -1
        ).astype(int)

        # pulse detection per policy
        if self.collision_policy == "tolerant":
            heard = any_heard
        elif self.collision_policy == "destructive":
            heard = counts == 1
        else:  # capture
            heard = decodable
        return heard, decoded_sender


class SparsePulseSyncKernel(_PulseSyncBase):
    """CSR coupling-graph kernel — O(wave edges) per wave.

    The coupling graph (what :class:`PulseSyncKernel` expresses as the
    boolean ``adjacency`` mask) is given in CSR form with the mean
    received power per directed edge.  Each wave gathers the firers' edge
    ranges (:func:`~repro.radio.sparse_link.gather_rows`), applies
    per-edge counter-based fading, and resolves detection/decoding with
    segment reductions over the receiver-sorted edge list.  The strongest
    -copy tie-break (equal powers → lowest transmitter id) matches dense
    ``np.argmax`` first-occurrence semantics exactly.

    Length-``n`` scratch arrays are preallocated once and reused across
    waves; nothing of size n² is ever allocated.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_power_dbm: np.ndarray,
        prc: LinearPRC,
        *,
        period_ms: float,
        threshold_dbm: float,
        refractory_ms: float = 1.0,
        sync_window_ms: float = 2.0,
        fading=None,
        collision_policy: str = "tolerant",
        capture_margin_db: float = 6.0,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.edge_power_dbm = np.asarray(edge_power_dbm, dtype=float)
        if self.indices.shape != self.edge_power_dbm.shape:
            raise ValueError("indices and edge_power_dbm must align")
        self._init_common(
            self.indptr.size - 1,
            prc,
            period_ms=period_ms,
            threshold_dbm=threshold_dbm,
            refractory_ms=refractory_ms,
            sync_window_ms=sync_window_ms,
            fading=fading,
            collision_policy=collision_policy,
            capture_margin_db=capture_margin_db,
        )
        if self._stream_fading:
            raise TypeError(
                "SparsePulseSyncKernel needs counter-based fading "
                "(HashedRayleighFading or NoFading), got "
                f"{type(self.fading).__name__}"
            )
        # scratch reused across waves (never n²)
        self._counts = np.zeros(self.n, dtype=np.int64)
        self._heard = np.zeros(self.n, dtype=bool)
        self._dec_sender = np.full(self.n, -1, dtype=int)

    @classmethod
    def from_edges(
        cls,
        n: int,
        tx: np.ndarray,
        rx: np.ndarray,
        power_dbm: np.ndarray,
        prc: LinearPRC,
        **kwargs,
    ) -> "SparsePulseSyncKernel":
        """Build from a directed edge list (sorted internally)."""
        indptr, indices, (power,) = csr_from_edges(n, tx, rx, power_dbm)
        return cls(indptr, indices, power, prc, **kwargs)

    # ------------------------------------------------------------------
    def _wave_reception(
        self, firers: np.ndarray, event: int, need_decoding: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        epos, tx_e = gather_rows(self.indptr, firers)
        rx_e = self.indices[epos]
        power_e = self.edge_power_dbm[epos]
        if self._hashed_fading:
            power_e = power_e + self.fading.link_db(event, tx_e, rx_e)
        det = power_e >= self.threshold_dbm
        tx_e = tx_e[det]
        rx_e = rx_e[det]
        power_e = power_e[det]

        heard = self._heard
        heard.fill(False)
        dec_sender = self._dec_sender
        dec_sender.fill(-1)

        if not need_decoding and self.collision_policy == "tolerant":
            heard[rx_e] = True
            return heard, dec_sender
        if not need_decoding and self.collision_policy == "destructive":
            counts = self._counts
            counts[rx_e] = 0
            np.add.at(counts, rx_e, 1)
            heard[rx_e] = counts[rx_e] == 1
            return heard, dec_sender

        if rx_e.size == 0:
            return heard, dec_sender

        # receiver-sorted segments: power descending, lowest tx on ties —
        # the first edge of each segment is the dense argmax winner
        order = np.lexsort((tx_e, -power_e, rx_e))
        rx_s = rx_e[order]
        pw_s = power_e[order]
        tx_s = tx_e[order]
        seg_starts = np.flatnonzero(
            np.concatenate(([True], rx_s[1:] != rx_s[:-1]))
        )
        seg_rx = rx_s[seg_starts]
        seg_counts = np.diff(np.concatenate((seg_starts, [rx_s.size])))
        strongest_pow = pw_s[seg_starts]
        strongest_tx = tx_s[seg_starts]

        signal = np.power(10.0, strongest_pow / 10.0)
        total = np.add.reduceat(np.power(10.0, pw_s / 10.0), seg_starts)
        noise = np.maximum(total - signal, 1e-30)
        with np.errstate(divide="ignore", invalid="ignore"):
            sir_db = 10.0 * np.log10(np.maximum(signal, 1e-300) / noise)
        decodable = (seg_counts == 1) | (sir_db >= self.capture_margin_db)
        dec_sender[seg_rx[decodable]] = strongest_tx[decodable]

        if self.collision_policy == "tolerant":
            heard[seg_rx] = True
        elif self.collision_policy == "destructive":
            heard[seg_rx] = seg_counts == 1
        else:  # capture
            heard[seg_rx] = decodable
        return heard, dec_sender
