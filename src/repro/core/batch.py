"""Batch execution backend — whole-array kernels for 50k–100k UEs.

The ``sparse`` backend already avoids O(n²) state, but parts of its ST
pipeline still scale badly at 50k–100k UEs: the required-edge selection
runs a global 3-key lexsort over all E radio edges, each Borůvka phase
re-derives per-fragment accounting from a ``fromiter`` component scan
plus frozenset snapshots, and the timing replay runs a Python double-BFS
per fragment merge.  At n = 50 000 those costs rival the per-edge radio
work itself.

The ``batch`` backend replaces each of those loops with one vectorized
pass while producing **bitwise-identical** runs.  Three properties make
that possible:

* channel and fault draws are counter-hashed — pure functions of
  ``(key, event, tx, rx)`` — so evaluating a whole period's worth of
  events as one array call yields the same floats per element as the
  scalar per-event calls (:mod:`repro.radio.chanhash`);
* elementwise float ops commute with gathering: computing on a gathered
  subset (or on a whole-period concatenation of cohorts) is bitwise what
  the per-cohort / masked full-array form computes;
* segment reductions (``np.add.reduceat`` / ``np.maximum.reduceat``)
  over segments whose elements sit in the same sorted order accumulate
  left-to-right exactly like the per-cohort reductions they replace.

What lives here:

* :class:`BatchPulseSyncKernel` — PRC advancement on the gathered
  eligible subset, O(|wave|) instead of O(n) per avalanche wave;
* :func:`top_k_required_batch` — k = 1 heaviest-neighbour mask via
  segment reductions instead of a global 3-key lexsort (the largest
  single win: the lexsort is seconds at n = 20 000, the reductions
  tens of milliseconds);
* :class:`TreeDistanceOracle` / :class:`BatchReplayLedger` — exact O(1)
  hop distances over the final Borůvka forest (Euler tour + sparse-table
  RMQ), powering incremental fragment-diameter tracking for the ST
  timing replay (the sparse path re-runs a double BFS per merge);
* :class:`BatchBeaconDiscovery` — the discovery seam; measurement kept
  it identical to the per-cohort sparse decode (see its docstring).

The batch Borůvka phase driver itself lives in
:func:`repro.spanningtree.boruvka.distributed_boruvka_batch`.
Differential conformance (``repro conformance diff sparse-batch``) and
``tests/test_batch_parity.py`` hold the bitwise-identity contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.beacon import SparseBeaconDiscovery, top_k_required_csr
from repro.core.pulsesync import SparsePulseSyncKernel
from repro.radio.sparse_link import SparseLinkBudget
from repro.spanningtree.unionfind import UnionFind


class BatchPulseSyncKernel(SparsePulseSyncKernel):
    """Sparse kernel with subset PRC advancement (the ``batch`` backend).

    The shared run loop calls :meth:`_apply_prc` once per avalanche
    wave.  The base implementation computes phases over all n
    oscillators and discards the non-eligible results; here the eligible
    indices are gathered first, so a wave of w receivers costs O(w).
    Elementwise float ops on the gathered subset are bitwise what the
    masked full-array form computes at the same positions, so runs are
    seed-for-seed identical to the sparse (and dense) kernels.
    """

    def _apply_prc(
        self,
        eligible: np.ndarray,
        next_fire: np.ndarray,
        period_of: np.ndarray,
        t: float,
    ) -> np.ndarray:
        idx = np.flatnonzero(eligible)
        period_sub = period_of[idx]
        theta = 1.0 - (next_fire[idx] - t) / period_sub
        theta = np.clip(theta, 0.0, 1.0)
        new_theta = np.minimum(self.prc.alpha * theta + self.prc.beta, 1.0)
        fire_sub = new_theta >= 1.0
        adjust = idx[~fire_sub]
        next_fire[adjust] = t + (1.0 - new_theta[~fire_sub]) * period_sub[
            ~fire_sub
        ]
        to_fire = np.zeros(self.n, dtype=bool)
        to_fire[idx[fire_sub]] = True
        return to_fire


class BatchBeaconDiscovery(SparseBeaconDiscovery):
    """Beacon discovery for the ``batch`` backend.

    Identical to :class:`SparseBeaconDiscovery` — deliberately.  A
    whole-period decode (gather every transmitter's edges at once, tag
    each edge with its cohort's event id, resolve all capture races with
    one global 4-key lexsort) was implemented and benchmarked first: at
    the paper's density a beacon period has few occupied channels
    (``period_slots × preambles`` ≈ 800) and therefore *large* cohorts
    (thousands of edges each), so the per-cohort numpy calls are already
    amortized, while the whole-period variant pays per-edge *array*
    event-id hashing (``splitmix64`` over an E-sized event array instead
    of one scalar subkey per cohort) and an E log E global sort where
    the base class runs cache-resident per-cohort sorts.  Measured at
    n = 20 000 the whole-period decode was ~3× slower; see
    docs/performance.md ("Batch backend") for the numbers.

    The class exists so the backend wiring stays uniform (`st`/`fst`
    select the discovery class per backend) and as the documented seam
    for a future decode that does beat the cohort loop.
    """


def top_k_required_batch(budget: SparseLinkBudget, k: int = 1) -> np.ndarray:
    """Segment-reduction :func:`~repro.core.beacon.top_k_required_csr`.

    For the k = 1 case the ST seed needs, the per-receiver heaviest link
    is a ``maximum.reduceat`` over the link CSR rows and the tie-break
    (equal weights → lowest neighbour id) a masked ``minimum.reduceat``
    — O(E) with no global lexsort.  The row maximum returned by reduceat
    is one of the row's elements bitwise, so the equality mask selects
    exactly the argmax candidates the lexsort version ranks first.
    Falls back to the CSR implementation for k > 1.
    """
    if k != 1:
        return top_k_required_csr(budget, k)
    indptr = budget.link_indptr
    nbr = budget.link_indices
    w = budget.link_power_dbm
    required = np.zeros(budget.edge_count, dtype=bool)
    rows = np.flatnonzero(np.diff(indptr) > 0)
    if rows.size == 0:
        return required
    starts = indptr[rows]
    row_max = np.maximum.reduceat(w, starts)
    is_max = w == np.repeat(row_max, np.diff(indptr)[rows])
    best_nbr = np.minimum.reduceat(np.where(is_max, nbr, budget.n), starts)
    pos = budget.edge_position(best_nbr, rows)
    required[pos] = True
    return required


class TreeDistanceOracle:
    """Exact O(1) hop distances on a fixed forest.

    Built once from the final Borůvka forest: an Euler tour per
    component plus a sparse-table RMQ over tour depths.  ``distance(x,
    y)`` is ``depth[x] + depth[y] − 2·min-depth`` on the tour interval —
    all integer arithmetic, so results equal a BFS exactly.  Because a
    fragment's tree is a connected subgraph of the final forest, the
    unique path between two co-fragment nodes is the same in both, and
    mid-replay fragment distances can be answered from the completed
    forest.
    """

    def __init__(self, n: int, edges: list[tuple[int, int]]) -> None:
        adj: list[list[int]] = [[] for _ in range(n)]
        for u, v in edges:
            adj[u].append(v)
            adj[v].append(u)
        depth = [0] * n
        first = [0] * n
        tour: list[int] = []
        visited = bytearray(n)
        for root in range(n):
            if visited[root]:
                continue
            visited[root] = 1
            first[root] = len(tour)
            tour.append(0)
            stack = [(root, iter(adj[root]))]
            while stack:
                node, it = stack[-1]
                descended = False
                for child in it:
                    if visited[child]:
                        continue
                    visited[child] = 1
                    depth[child] = depth[node] + 1
                    first[child] = len(tour)
                    tour.append(depth[child])
                    stack.append((child, iter(adj[child])))
                    descended = True
                    break
                if not descended:
                    stack.pop()
                    if stack:
                        tour.append(depth[stack[-1][0]])
        self._depth = depth
        self._first = first
        # sparse table: level k holds windowed minima of width 2^k
        level = np.asarray(tour, dtype=np.int32)
        size = level.size
        self._table = [level]
        k = 1
        while (1 << k) <= size:
            half = 1 << (k - 1)
            prev = self._table[-1]
            width = size - (1 << k) + 1
            self._table.append(np.minimum(prev[:width], prev[half:half + width]))
            k += 1

    def distance(self, x: int, y: int) -> int:
        """Hop distance between ``x`` and ``y`` (must share a component)."""
        if x == y:
            return 0
        lo = self._first[x]
        hi = self._first[y]
        if lo > hi:
            lo, hi = hi, lo
        k = (hi - lo + 1).bit_length() - 1
        t = self._table[k]
        m = min(t[lo], t[hi - (1 << k) + 1])
        return self._depth[x] + self._depth[y] - 2 * int(m)


class BatchReplayLedger:
    """Incremental fragment bookkeeping for the batch ST timing replay.

    Mirrors the sparse replay state (a
    :class:`~repro.spanningtree.fragment.FragmentSet` plus a double-BFS
    per merge) with O(α) sizes and O(1) diameters: per-fragment diameter
    endpoints are maintained under the classic merge rule

    ``diam(A ∪ B) = max(diam A, diam B, ecc_A(u) + 1 + ecc_B(v))``

    where ``ecc_T(x) = max(d(x, a), d(x, b))`` for any diameter pair
    ``(a, b)`` of T — four oracle distance queries per merge, all exact
    integers, so every diameter equals the BFS value the sparse replay
    computes.
    """

    def __init__(self, n: int, forest_edges: list[tuple[int, int]]) -> None:
        self._oracle = TreeDistanceOracle(n, forest_edges)
        self._uf = UnionFind(n)
        self._diam = [0] * n
        self._end_a = list(range(n))
        self._end_b = list(range(n))
        self._roots = set(range(n))
        self._edges: list[tuple[int, int]] = []
        self.count = n

    def size_of(self, u: int) -> int:
        return self._uf.size_of(u)

    def diameter_of(self, u: int) -> int:
        return self._diam[self._uf.find(u)]

    def merge(self, u: int, v: int) -> bool:
        uf = self._uf
        ru, rv = uf.find(u), uf.find(v)
        if ru == rv:
            return False
        dist = self._oracle.distance
        d_a, a_a, b_a = self._diam[ru], self._end_a[ru], self._end_b[ru]
        d_b, a_b, b_b = self._diam[rv], self._end_a[rv], self._end_b[rv]
        dau, dbu = dist(a_a, u), dist(b_a, u)
        ecc_u, far_u = (dau, a_a) if dau >= dbu else (dbu, b_a)
        dav, dbv = dist(a_b, v), dist(b_b, v)
        ecc_v, far_v = (dav, a_b) if dav >= dbv else (dbv, b_b)
        cross = ecc_u + 1 + ecc_v
        uf.union(u, v)
        root = uf.find(u)
        if cross >= d_a and cross >= d_b:
            nd, na, nb = cross, far_u, far_v
        elif d_a >= d_b:
            nd, na, nb = d_a, a_a, b_a
        else:
            nd, na, nb = d_b, a_b, b_b
        self._diam[root] = nd
        self._end_a[root] = na
        self._end_b[root] = nb
        self._roots.discard(ru)
        self._roots.discard(rv)
        self._roots.add(root)
        self._edges.append((u, v) if u < v else (v, u))
        self.count -= 1
        return True

    def sizes(self) -> list[int]:
        """Current fragment sizes (same multiset as ``fragments()``)."""
        uf = self._uf
        return [uf.size_of(r) for r in sorted(self._roots)]

    def all_tree_edges(self) -> list[tuple[int, int]]:
        return sorted(set(self._edges))
