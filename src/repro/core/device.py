"""Device (UE) model.

A :class:`Device` bundles the per-UE state the protocols manipulate: its
position, oscillator, neighbour table, service interest and message
counters.  The heavy numerical state (phases, fire times) lives in the
vectorized kernels; ``Device`` is the object-level view used by examples,
the discovery layer and the fragment bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.discovery.neighbor import NeighborTable
from repro.oscillator.phase import PhaseOscillator
from repro.oscillator.prc import LinearPRC


@dataclass
class Device:
    """One User Equipment participating in D2D discovery.

    Attributes
    ----------
    device_id:
        0-based id; doubles as the index into all network matrices.
    position:
        ``(x, y)`` in metres.
    oscillator:
        The device's firefly clock (eqs 3–4).
    neighbor_table:
        Physical + application discovery state.
    service:
        The service interest this device advertises.
    fragment:
        Current fragment root (ST algorithm bookkeeping); ``device_id``
        while the device is still a singleton.
    """

    device_id: int
    position: tuple[float, float]
    oscillator: PhaseOscillator
    neighbor_table: NeighborTable = field(init=False)
    service: int = 0
    fragment: int = field(init=False)
    messages_sent: int = 0

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError(f"device_id must be >= 0, got {self.device_id}")
        if self.service < 0:
            raise ValueError(f"service must be >= 0, got {self.service}")
        self.neighbor_table = NeighborTable(self.device_id)
        self.fragment = self.device_id

    def distance_to(self, other: "Device") -> float:
        """Euclidean distance in metres."""
        dx = self.position[0] - other.position[0]
        dy = self.position[1] - other.position[1]
        return float(np.hypot(dx, dy))

    def __repr__(self) -> str:
        x, y = self.position
        return (
            f"Device(id={self.device_id}, pos=({x:.1f}, {y:.1f}), "
            f"service={self.service}, fragment={self.fragment})"
        )


def make_devices(
    positions: np.ndarray,
    period_ms: float,
    prc: LinearPRC,
    rng: np.random.Generator,
    *,
    services: np.ndarray | None = None,
    refractory_ms: float = 0.0,
) -> list[Device]:
    """Build devices with independent random initial phases.

    Parameters
    ----------
    positions:
        ``(n, 2)`` coordinates.
    services:
        Optional per-device service ids (default all 0).
    """
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    if services is None:
        services = np.zeros(n, dtype=int)
    services = np.asarray(services, dtype=int)
    if services.shape != (n,):
        raise ValueError(f"services must have shape ({n},), got {services.shape}")
    phases = rng.uniform(0.0, 1.0, size=n)
    devices = []
    for i in range(n):
        osc = PhaseOscillator(
            period_ms,
            prc,
            phase=float(min(phases[i], 0.999999)),
            refractory=refractory_ms,
        )
        devices.append(
            Device(
                device_id=i,
                position=(float(positions[i, 0]), float(positions[i, 1])),
                oscillator=osc,
                service=int(services[i]),
            )
        )
    return devices
