"""Slotted random-access discovery beaconing.

Besides its synchronization pulse, each device transmits one *discovery
beacon* per oscillator period in a uniformly random slot (the random-
subframe beaconing of [17]; also the classic birthday-protocol schedule
[4]).  A receiver identity-decodes the strongest beacon landing in a slot
when it clears the capture margin over the superposed rest — so in dense
deployments (many devices per slot) weak links decode rarely, and
*complete* pairwise discovery becomes the dominant cost of any mesh-wide
scheme.  The tree-based ST algorithm only needs each device to decode its
heaviest neighbours, which are strong precisely because they are heavy —
the physical root of the paper's scaling advantage.

The simulation is vectorized per slot-cohort; one period costs O(n²)
array work regardless of how the cohorts fall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs import Observability
from repro.radio.fading import NoFading
from repro.radio.sparse_link import SparseLinkBudget, gather_rows

#: Bucket bounds for per-slot beacon occupancy (transmitters per slot).
SLOT_OCCUPANCY_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0)


@dataclass
class BeaconResult:
    """Outcome of a beacon-discovery run."""

    complete: bool
    periods: int
    time_ms: float
    messages: int
    #: decoded[i, j] — receiver i decoded sender j at least once
    decoded: np.ndarray = field(repr=False, default=None)
    #: ordered pairs still missing when the run ended
    missing_pairs: int = 0
    #: post-collision re-beacon transmissions (0 without a FaultPlan)
    retries: int = 0
    #: fault events injected (beacon losses + preamble collisions)
    faults_injected: int = 0


class _BeaconFaultState:
    """Mutable per-run fault bookkeeping shared by both discovery classes.

    Driven purely by the (period index, period start time) pair and the
    deterministic :class:`~repro.faults.plan.FaultPlan`, so a dense and a
    sparse run over the same plan evolve bit-identically.  Collided
    transmitters back off exponentially (``2^streak − 1`` silent periods,
    bounded by ``max_backoff_periods``); their next transmission counts
    as a retry.  Crashed devices fall permanently silent; stalled devices
    neither transmit nor receive while inside their stall window.
    """

    def __init__(self, plan: FaultPlan, n: int) -> None:
        self.plan = plan
        self.backoff_until = np.zeros(n, dtype=np.int64)
        self.streak = np.zeros(n, dtype=np.int64)
        self.pending_retry = np.zeros(n, dtype=bool)
        self.retries = 0
        self.beacon_losses = 0
        self.collisions = 0
        self._ids = np.arange(n, dtype=np.int64)

    def begin_period(
        self, period: int, period_start_ms: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(transmitters, surviving beacons, receiving)`` masks."""
        plan = self.plan
        receiving = ~plan.dead_by(period_start_ms) & ~plan.stalled_at(
            period_start_ms
        )
        tx_mask = receiving & (self.backoff_until <= period)
        self.retries += int((tx_mask & self.pending_retry).sum())
        self.pending_retry &= ~tx_mask
        collided = tx_mask & plan.rach_collided(period, self._ids)
        ok = tx_mask & ~collided
        self.streak[ok] = 0
        if collided.any():
            self.collisions += int(collided.sum())
            self.streak[collided] += 1
            backoff = np.minimum(
                2 ** np.minimum(self.streak[collided], 16) - 1,
                plan.config.max_backoff_periods,
            )
            self.backoff_until[collided] = period + 1 + backoff
            self.pending_retry |= collided
        return tx_mask, ok, receiving

    def lose_beacons(
        self, event: int, tx: np.ndarray, rx: np.ndarray
    ) -> np.ndarray:
        """Per-pair decode-erasure mask for this slot's winners (counted)."""
        lost = self.plan.beacon_lost(event, tx, rx)
        self.beacon_losses += int(np.count_nonzero(lost))
        return lost

    @property
    def injected(self) -> int:
        return self.beacon_losses + self.collisions

    def record(self, obs: Observability | None, labels: dict) -> None:
        if obs is None:
            return
        counter = obs.metrics.counter(
            "faults_injected_total",
            help="fault events injected by the active FaultPlan",
            unit="events",
        )
        if self.beacon_losses:
            counter.inc(self.beacon_losses, kind="beacon_loss", **labels)
        if self.collisions:
            counter.inc(self.collisions, kind="rach_collision", **labels)
        if self.retries:
            obs.metrics.counter(
                "retries_total",
                help="post-collision re-beacon transmissions",
                unit="messages",
            ).inc(self.retries, **labels)


class BeaconDiscovery:
    """Random-slot beaconing over a fixed radio environment.

    Parameters
    ----------
    mean_rx_dbm:
        ``(n, n)`` mean received power (dBm), −inf diagonal.
    threshold_dbm:
        Detection floor.
    period_slots, slot_ms:
        Beacon period structure (one beacon per device per period).
    capture_margin_db:
        SIR the strongest same-slot beacon needs to decode.
    preambles:
        Orthogonal preamble pool the beacons randomize over.
    listen_duty:
        Fraction of slots each receiver keeps its radio on (power-saving
        duty cycling per the birthday-protocol line of work [4]–[9]);
        1.0 = always listening.  A sleeping receiver decodes nothing that
        slot, trading discovery latency for receive energy.
    fading:
        Per-transmission fading (fresh draw per beacon per receiver).
    """

    def __init__(
        self,
        mean_rx_dbm: np.ndarray,
        *,
        threshold_dbm: float,
        period_slots: int,
        slot_ms: float = 1.0,
        capture_margin_db: float = 6.0,
        preambles: int = 1,
        listen_duty: float = 1.0,
        fading=None,
    ) -> None:
        mean_rx_dbm = np.asarray(mean_rx_dbm, dtype=float)
        if mean_rx_dbm.ndim != 2 or mean_rx_dbm.shape[0] != mean_rx_dbm.shape[1]:
            raise ValueError("mean_rx_dbm must be square")
        if period_slots < 1:
            raise ValueError("period_slots must be >= 1")
        if slot_ms <= 0:
            raise ValueError("slot_ms must be positive")
        if preambles < 1:
            raise ValueError("preambles must be >= 1")
        if not 0.0 < listen_duty <= 1.0:
            raise ValueError(f"listen_duty must be in (0, 1], got {listen_duty}")
        self.n = mean_rx_dbm.shape[0]
        self.mean_rx = mean_rx_dbm
        self.threshold_dbm = float(threshold_dbm)
        self.period_slots = int(period_slots)
        self.slot_ms = float(slot_ms)
        self.capture_margin_db = float(capture_margin_db)
        self.preambles = int(preambles)
        self.listen_duty = float(listen_duty)
        self.fading = fading if fading is not None else NoFading()
        self._hashed_fading = hasattr(self.fading, "link_db")
        self._node_ids = np.arange(self.n, dtype=np.int64)

    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator,
        required: np.ndarray,
        *,
        max_periods: int = 3_000,
        decoded: np.ndarray | None = None,
        obs: Observability | None = None,
        obs_labels: dict[str, str] | None = None,
        faults: FaultPlan | None = None,
    ) -> BeaconResult:
        """Beacon until every ``required[i, j]`` pair has been decoded.

        Parameters
        ----------
        required:
            Ordered-pair matrix: receiver ``i`` must decode sender ``j``.
        decoded:
            Optional pre-existing decode state to continue from (mutated).
        obs:
            Optional observability bundle: bills ``beacon_tx_total``,
            observes per-slot occupancy, and records a ``neighbor_fill``
            probe sample per period (how much of the required
            neighbour-table is decoded).  ``None`` leaves the loop
            untouched.
        obs_labels:
            Labels attached to the metrics this run records.
        faults:
            Optional :class:`~repro.faults.plan.FaultPlan`.  Injects
            beacon-decode loss, bursty RACH preamble collisions (with
            bounded exponential backoff and retry accounting), and
            crash/stall silence; required pairs touching crashed devices
            are dropped so the loop cannot spin on the unreachable.
            ``None`` (default) leaves the loop byte-identical to before.
        """
        n = self.n
        required = np.asarray(required, dtype=bool).copy()
        if required.shape != (n, n):
            raise ValueError(f"required must be ({n}, {n})")
        np.fill_diagonal(required, False)
        if decoded is None:
            decoded = np.zeros((n, n), dtype=bool)
        remaining = int((required & ~decoded).sum())
        required_total = max(int(required.sum()), 1)
        messages = 0
        use_fading = not isinstance(self.fading, NoFading)
        labels = obs_labels or {}
        bus = obs.bus if obs is not None else None
        if obs is not None:
            tx_counter = obs.metrics.counter(
                "beacon_tx_total",
                help="discovery beacon transmissions",
                unit="messages",
            )
            # bound view: label key resolved once, not per cohort
            occ_hist = obs.metrics.histogram(
                "beacon_slot_occupancy",
                buckets=SLOT_OCCUPANCY_BUCKETS,
                help="simultaneous beacons per occupied slot/preamble",
                unit="transmitters",
            ).bound(**labels)
        else:
            tx_counter = None
            occ_hist = None

        fstate = _BeaconFaultState(faults, n) if faults is not None else None
        period = 0
        period_tx = n
        prev_collisions = 0
        prev_retries = 0
        event = 0  # radio event counter: one per slot-cohort
        while remaining > 0 and period < max_periods:
            period += 1
            # each device picks a random (slot, preamble); only same-slot
            # same-preamble beacons superpose (OFDMA orthogonality).  The
            # draw covers all n devices even under faults so the stream
            # stays aligned with fault-free runs.
            chan = rng.integers(0, self.period_slots * self.preambles, size=n)
            if self.listen_duty < 1.0:
                # per-slot sleep schedule: a sleeping receiver misses every
                # preamble of that slot
                awake = rng.random((self.period_slots, n)) < self.listen_duty
            else:
                awake = None
            if fstate is None:
                messages += n
                receiving = None
                order = np.argsort(chan, kind="stable")
            else:
                period_start_ms = (period - 1) * self.period_slots * self.slot_ms
                tx_mask, ok_mask, receiving = fstate.begin_period(
                    period, period_start_ms
                )
                period_tx = int(tx_mask.sum())
                messages += period_tx
                dead = faults.dead_by(period_start_ms)
                if dead.any():
                    # timeout discipline: crashed devices can never satisfy
                    # a required pair — drop them instead of spinning
                    required[dead, :] = False
                    required[:, dead] = False
                live = np.flatnonzero(ok_mask)
                order = live[np.argsort(chan[live], kind="stable")]
            if order.size:
                sorted_chan = chan[order]
                boundaries = np.nonzero(np.diff(sorted_chan))[0] + 1
                cohorts = np.split(order, boundaries)
                starts = np.concatenate(([0], boundaries))
                for cohort, start in zip(cohorts, starts):
                    slot = int(sorted_chan[start]) // self.preambles
                    awake_row = awake[slot] if awake is not None else None
                    if receiving is not None:
                        awake_row = (
                            receiving
                            if awake_row is None
                            else awake_row & receiving
                        )
                    if occ_hist is not None:
                        occ_hist.observe(cohort.size)
                    self._decode_cohort(
                        cohort, rng, required, decoded, use_fading, awake_row,
                        event, fstate,
                    )
                    event += 1
            remaining = int((required & ~decoded).sum())
            if obs is not None:
                tx_counter.inc(n, **labels)
                period_end_ms = period * self.period_slots * self.slot_ms
                obs.probes.record(
                    period_end_ms,
                    "neighbor_fill",
                    fill_ratio=1.0 - remaining / required_total,
                    missing_pairs=remaining,
                    periods=period,
                )
                if obs.trace is not None:
                    obs.trace.emit(
                        period_end_ms,
                        "beacon_period",
                        period=period,
                        missing_pairs=remaining,
                        **labels,
                    )
                if bus is not None:
                    bus.publish(
                        "beacon",
                        period_end_ms,
                        labels,
                        period=period,
                        missing_pairs=remaining,
                        fill_ratio=1.0 - remaining / required_total,
                    )
                    if fstate is not None:
                        bus.publish(
                            "rach",
                            period_end_ms,
                            labels,
                            collisions=fstate.collisions - prev_collisions,
                            retries=fstate.retries - prev_retries,
                            transmitters=period_tx,
                        )
                        prev_collisions = fstate.collisions
                        prev_retries = fstate.retries

        if obs is not None:
            obs.metrics.gauge(
                "beacon_missing_pairs",
                help="required (receiver, sender) pairs still undecoded",
                unit="pairs",
            ).set(remaining, **labels)
        if fstate is not None:
            fstate.record(obs, labels)
        return BeaconResult(
            complete=remaining == 0,
            periods=period,
            time_ms=period * self.period_slots * self.slot_ms,
            messages=messages,
            decoded=decoded,
            missing_pairs=remaining,
            retries=fstate.retries if fstate is not None else 0,
            faults_injected=fstate.injected if fstate is not None else 0,
        )

    # ------------------------------------------------------------------
    def _decode_cohort(
        self,
        cohort: np.ndarray,
        rng: np.random.Generator,
        required: np.ndarray,
        decoded: np.ndarray,
        use_fading: bool,
        awake: np.ndarray | None = None,
        event: int = 0,
        fstate: _BeaconFaultState | None = None,
    ) -> None:
        """One slot: cohort members transmit simultaneously; decode."""
        n = self.n
        k = cohort.size
        if k == 1:
            # fast path: an uncontested beacon decodes wherever detected
            tx = int(cohort[0])
            power_row = self.mean_rx[tx]
            if self._hashed_fading:
                power_row = power_row + self.fading.link_db(
                    event, np.int64(tx), self._node_ids
                )
            elif use_fading:
                power_row = power_row + self.fading.sample_db(n)
            det_row = power_row >= self.threshold_dbm
            det_row[tx] = False
            if awake is not None:
                det_row &= awake
            if fstate is None:
                decoded[det_row, tx] = True
            else:
                rx_idx = np.nonzero(det_row)[0]
                if rx_idx.size:
                    lost = fstate.lose_beacons(event, np.int64(tx), rx_idx)
                    decoded[rx_idx[~lost], tx] = True
            return
        power = self.mean_rx[cohort]
        if self._hashed_fading:
            power = power + self.fading.link_db(
                event, cohort[:, None], self._node_ids[None, :]
            )
        elif use_fading:
            power = power + self.fading.sample_db((k, n))
        det = power >= self.threshold_dbm
        counts = det.sum(axis=0)
        any_heard = counts >= 1
        if not any_heard.any():
            return
        masked = np.where(det, power, -np.inf)
        strongest_row = np.argmax(masked, axis=0)
        strongest_pow = masked[strongest_row, np.arange(n)]
        linear = np.where(det, np.power(10.0, power / 10.0), 0.0)
        total = linear.sum(axis=0)
        signal = np.where(any_heard, np.power(10.0, strongest_pow / 10.0), 0.0)
        noise = np.maximum(total - signal, 1e-30)
        with np.errstate(divide="ignore", invalid="ignore"):
            sir_db = 10.0 * np.log10(np.maximum(signal, 1e-300) / noise)
        decodable = any_heard & (
            (counts == 1) | (sir_db >= self.capture_margin_db)
        )
        # half-duplex: transmitters cannot decode this slot
        decodable[cohort] = False
        if awake is not None:
            decodable &= awake
        rx_idx = np.nonzero(decodable)[0]
        if rx_idx.size:
            tx_idx = cohort[strongest_row[rx_idx]]
            if fstate is not None:
                lost = fstate.lose_beacons(event, tx_idx, rx_idx)
                rx_idx = rx_idx[~lost]
                tx_idx = tx_idx[~lost]
            decoded[rx_idx, tx_idx] = True


class SparseBeaconDiscovery:
    """Random-slot beaconing over a CSR radio graph — O(E) per period.

    The sparse counterpart of :class:`BeaconDiscovery`: ``required`` and
    ``decoded`` are boolean masks over the budget's *radio graph* edges
    (edge ``tx → rx`` decoded ⇔ receiver ``rx`` identity-decoded sender
    ``tx``) instead of ``(n, n)`` matrices.  The radio graph includes
    every link whose mean power is within the fading cap of the
    threshold, so all possible detections — including the sub-threshold
    interferers that decide the capture race — are represented.

    Requires counter-based fading; it advances the same slot-cohort event
    counter as the dense class, so with
    :class:`~repro.radio.fading.HashedRayleighFading` the two are
    seed-for-seed identical given the same ``rng``.
    """

    def __init__(
        self,
        budget: SparseLinkBudget,
        *,
        threshold_dbm: float,
        period_slots: int,
        slot_ms: float = 1.0,
        capture_margin_db: float = 6.0,
        preambles: int = 1,
        listen_duty: float = 1.0,
        fading=None,
    ) -> None:
        if period_slots < 1:
            raise ValueError("period_slots must be >= 1")
        if slot_ms <= 0:
            raise ValueError("slot_ms must be positive")
        if preambles < 1:
            raise ValueError("preambles must be >= 1")
        if not 0.0 < listen_duty <= 1.0:
            raise ValueError(f"listen_duty must be in (0, 1], got {listen_duty}")
        self.budget = budget
        self.n = budget.n
        self.threshold_dbm = float(threshold_dbm)
        self.period_slots = int(period_slots)
        self.slot_ms = float(slot_ms)
        self.capture_margin_db = float(capture_margin_db)
        self.preambles = int(preambles)
        self.listen_duty = float(listen_duty)
        self.fading = fading if fading is not None else budget.fading
        self._hashed_fading = hasattr(self.fading, "link_db")
        if not self._hashed_fading and not isinstance(self.fading, NoFading):
            raise TypeError(
                "SparseBeaconDiscovery needs counter-based fading "
                f"(got {type(self.fading).__name__})"
            )
        self._is_tx = np.zeros(self.n, dtype=bool)  # scratch, reused

    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator,
        required: np.ndarray,
        *,
        max_periods: int = 3_000,
        decoded: np.ndarray | None = None,
        obs: Observability | None = None,
        obs_labels: dict[str, str] | None = None,
        faults: FaultPlan | None = None,
    ) -> BeaconResult:
        """Beacon until every required radio-graph edge has been decoded.

        Mirrors :meth:`BeaconDiscovery.run` — same draws from ``rng`` in
        the same order, same metrics/probes, same fault injection — with
        edge-mask state.  The returned :class:`BeaconResult` carries the
        decoded *edge mask* in its ``decoded`` field.
        """
        n = self.n
        required = np.asarray(required, dtype=bool).copy()
        if required.shape != self.budget.indices.shape:
            raise ValueError(
                "required must be a radio-graph edge mask of length "
                f"{self.budget.edge_count}"
            )
        if decoded is None:
            decoded = np.zeros(required.size, dtype=bool)
        remaining = int((required & ~decoded).sum())
        required_total = max(int(required.sum()), 1)
        messages = 0
        labels = obs_labels or {}
        bus = obs.bus if obs is not None else None
        if obs is not None:
            tx_counter = obs.metrics.counter(
                "beacon_tx_total",
                help="discovery beacon transmissions",
                unit="messages",
            )
            # bound view: label key resolved once, not per cohort
            occ_hist = obs.metrics.histogram(
                "beacon_slot_occupancy",
                buckets=SLOT_OCCUPANCY_BUCKETS,
                help="simultaneous beacons per occupied slot/preamble",
                unit="transmitters",
            ).bound(**labels)
        else:
            tx_counter = None
            occ_hist = None

        fstate = _BeaconFaultState(faults, n) if faults is not None else None
        period = 0
        period_tx = n
        prev_collisions = 0
        prev_retries = 0
        event = 0  # radio event counter: one per slot-cohort
        while remaining > 0 and period < max_periods:
            period += 1
            # draw covers all n devices even under faults so the stream
            # stays aligned with fault-free (and dense) runs
            chan = rng.integers(0, self.period_slots * self.preambles, size=n)
            if self.listen_duty < 1.0:
                awake = rng.random((self.period_slots, n)) < self.listen_duty
            else:
                awake = None
            if fstate is None:
                messages += n
                receiving = None
                order = np.argsort(chan, kind="stable")
            else:
                period_start_ms = (period - 1) * self.period_slots * self.slot_ms
                tx_mask, ok_mask, receiving = fstate.begin_period(
                    period, period_start_ms
                )
                period_tx = int(tx_mask.sum())
                messages += period_tx
                dead = faults.dead_by(period_start_ms)
                if dead.any():
                    # timeout discipline: crashed devices can never satisfy
                    # a required pair — drop them instead of spinning
                    budget = self.budget
                    required &= ~(dead[budget.row_ids] | dead[budget.indices])
                live = np.flatnonzero(ok_mask)
                order = live[np.argsort(chan[live], kind="stable")]
            if order.size:
                event += self._process_period(
                    order, chan, awake, receiving, event, decoded, fstate,
                    occ_hist,
                )
            remaining = int((required & ~decoded).sum())
            if obs is not None:
                tx_counter.inc(n, **labels)
                period_end_ms = period * self.period_slots * self.slot_ms
                obs.probes.record(
                    period_end_ms,
                    "neighbor_fill",
                    fill_ratio=1.0 - remaining / required_total,
                    missing_pairs=remaining,
                    periods=period,
                )
                if obs.trace is not None:
                    obs.trace.emit(
                        period_end_ms,
                        "beacon_period",
                        period=period,
                        missing_pairs=remaining,
                        **labels,
                    )
                if bus is not None:
                    bus.publish(
                        "beacon",
                        period_end_ms,
                        labels,
                        period=period,
                        missing_pairs=remaining,
                        fill_ratio=1.0 - remaining / required_total,
                    )
                    if fstate is not None:
                        bus.publish(
                            "rach",
                            period_end_ms,
                            labels,
                            collisions=fstate.collisions - prev_collisions,
                            retries=fstate.retries - prev_retries,
                            transmitters=period_tx,
                        )
                        prev_collisions = fstate.collisions
                        prev_retries = fstate.retries

        if obs is not None:
            obs.metrics.gauge(
                "beacon_missing_pairs",
                help="required (receiver, sender) pairs still undecoded",
                unit="pairs",
            ).set(remaining, **labels)
        if fstate is not None:
            fstate.record(obs, labels)
        return BeaconResult(
            complete=remaining == 0,
            periods=period,
            time_ms=period * self.period_slots * self.slot_ms,
            messages=messages,
            decoded=decoded,
            missing_pairs=remaining,
            retries=fstate.retries if fstate is not None else 0,
            faults_injected=fstate.injected if fstate is not None else 0,
        )

    # ------------------------------------------------------------------
    def _process_period(
        self,
        order: np.ndarray,
        chan: np.ndarray,
        awake: np.ndarray | None,
        receiving: np.ndarray | None,
        event: int,
        decoded: np.ndarray,
        fstate: _BeaconFaultState | None,
        occ_hist,
    ) -> int:
        """Decode one period's slot-cohorts; returns the events consumed.

        ``order`` lists this period's live transmitters sorted (stably)
        by channel; cohorts are its channel groups in ascending channel
        order, and cohort ``c`` uses radio event ``event + c``.  The
        batch backend overrides this with a whole-period vectorized
        decode (:class:`repro.core.batch.BatchBeaconDiscovery`).
        """
        sorted_chan = chan[order]
        boundaries = np.nonzero(np.diff(sorted_chan))[0] + 1
        cohorts = np.split(order, boundaries)
        starts = np.concatenate(([0], boundaries))
        for offset, (cohort, start) in enumerate(zip(cohorts, starts)):
            slot = int(sorted_chan[start]) // self.preambles
            awake_row = awake[slot] if awake is not None else None
            if receiving is not None:
                awake_row = (
                    receiving if awake_row is None else awake_row & receiving
                )
            if occ_hist is not None:
                occ_hist.observe(cohort.size)
            self._decode_cohort(
                cohort, decoded, awake_row, event + offset, fstate
            )
        return len(cohorts)

    # ------------------------------------------------------------------
    def _decode_cohort(
        self,
        cohort: np.ndarray,
        decoded: np.ndarray,
        awake: np.ndarray | None,
        event: int,
        fstate: _BeaconFaultState | None = None,
    ) -> None:
        """One slot over CSR edges; same capture semantics as dense."""
        budget = self.budget
        if cohort.size == 1:
            tx = int(cohort[0])
            lo = budget.indptr[tx]
            hi = budget.indptr[tx + 1]
            rx = budget.indices[lo:hi]
            power = budget.power_dbm[lo:hi]
            if self._hashed_fading:
                power = power + self.fading.link_db(event, np.int64(tx), rx)
            det = power >= self.threshold_dbm
            if awake is not None:
                det &= awake[rx]
            if fstate is None:
                decoded[lo + np.flatnonzero(det)] = True
            else:
                pos = np.flatnonzero(det)
                if pos.size:
                    lost = fstate.lose_beacons(event, np.int64(tx), rx[pos])
                    decoded[lo + pos[~lost]] = True
            return
        epos, tx_e = gather_rows(budget.indptr, cohort)
        rx_e = budget.indices[epos]
        power_e = budget.power_dbm[epos]
        if self._hashed_fading:
            power_e = power_e + self.fading.link_db(event, tx_e, rx_e)
        det = power_e >= self.threshold_dbm
        epos = epos[det]
        tx_e = tx_e[det]
        rx_e = rx_e[det]
        power_e = power_e[det]
        if rx_e.size == 0:
            return
        # receiver segments: power descending, lowest tx on ties — the
        # first edge of a segment is the dense argmax winner
        order = np.lexsort((tx_e, -power_e, rx_e))
        rx_s = rx_e[order]
        pw_s = power_e[order]
        epos_s = epos[order]
        seg_starts = np.flatnonzero(
            np.concatenate(([True], rx_s[1:] != rx_s[:-1]))
        )
        seg_rx = rx_s[seg_starts]
        seg_counts = np.diff(np.concatenate((seg_starts, [rx_s.size])))
        signal = np.power(10.0, pw_s[seg_starts] / 10.0)
        total = np.add.reduceat(np.power(10.0, pw_s / 10.0), seg_starts)
        noise = np.maximum(total - signal, 1e-30)
        with np.errstate(divide="ignore", invalid="ignore"):
            sir_db = 10.0 * np.log10(np.maximum(signal, 1e-300) / noise)
        decodable = (seg_counts == 1) | (sir_db >= self.capture_margin_db)
        # half-duplex: transmitters cannot decode this slot
        is_tx = self._is_tx
        is_tx[cohort] = True
        decodable &= ~is_tx[seg_rx]
        is_tx[cohort] = False
        if awake is not None:
            decodable &= awake[seg_rx]
        if fstate is None:
            decoded[epos_s[seg_starts[decodable]]] = True
        else:
            win = seg_starts[decodable]
            if win.size:
                tx_s = tx_e[order]
                lost = fstate.lose_beacons(event, tx_s[win], rx_s[win])
                decoded[epos_s[win[~lost]]] = True


def top_k_required_csr(budget: SparseLinkBudget, k: int = 1) -> np.ndarray:
    """Sparse :func:`top_k_required`: a radio-graph edge mask.

    Each receiver must decode its ``k`` heaviest proximity neighbours;
    the mask marks the corresponding ``sender → receiver`` radio edges.
    Tie-break (equal weights → lowest neighbour id) matches the dense
    stable argsort.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = budget.n
    rx = budget.link_row_ids  # link graph is symmetric: row = receiver
    nbr = budget.link_indices
    w = budget.link_power_dbm
    order = np.lexsort((nbr, -w, rx))
    rx_s = rx[order]
    nbr_s = nbr[order]
    rank = np.arange(rx_s.size) - budget.link_indptr[rx_s]
    sel = rank < min(k, max(n - 1, 1))
    required = np.zeros(budget.edge_count, dtype=bool)
    pos = budget.edge_position(nbr_s[sel], rx_s[sel])
    required[pos] = True
    return required


def top_k_required(weights: np.ndarray, adjacency: np.ndarray, k: int = 1) -> np.ndarray:
    """Required-pairs matrix: each receiver must decode its ``k`` heaviest
    detectable neighbours — the knowledge the ST algorithm's first Borůvka
    phase needs ("in beginning nodes know only weight of links to whom
    they are connected" restricted to the links that matter)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    w = np.where(np.asarray(adjacency, dtype=bool), weights, -np.inf)
    n = w.shape[0]
    required = np.zeros((n, n), dtype=bool)
    # indices of the k largest per row (only finite ones); a device has at
    # most n-1 neighbours, so clamp k accordingly
    k = min(k, max(n - 1, 1))
    idx = np.argsort(-w, axis=1, kind="stable")[:, :k]
    rows = np.repeat(np.arange(n), k)
    cols = idx.ravel()
    finite = np.isfinite(w[rows, cols])
    required[rows[finite], cols[finite]] = True
    return required
