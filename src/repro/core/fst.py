"""FST baseline — mesh firefly synchronization (Chao et al. [17]).

The existing method the paper compares against: every device runs the
pulse-coupled firefly algorithm over the *whole proximity mesh* on a
single RACH codec, discovering neighbours and service interests from the
same PSs that drive synchronization.  Convergence is emergent — there is
no coordination structure — so at large scale (multi-hop topologies under
constant density) both the time to global synchrony and the number of PS
transmissions grow quickly, which is exactly the scaling weakness
Figs. 3–4 exhibit.

After synchronization the *basic firefly spanning tree* of Fig. 2 is
assembled: every device marks its heaviest (strongest-PS) incident edge;
the resulting heavy-edge forest is stitched into a tree over the heaviest
inter-component links, each stitch costing one RACH2 handshake (2
messages).  The headline metrics (time, messages) are dominated by the
mesh synchronization, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import BatchBeaconDiscovery, BatchPulseSyncKernel
from repro.core.beacon import BeaconDiscovery, SparseBeaconDiscovery
from repro.core.config import PaperConfig
from repro.core.network import D2DNetwork
from repro.core.pulsesync import (
    PhaseHook,
    PulseSyncKernel,
    SparsePulseSyncKernel,
)
from repro.core.results import RunResult
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.obs import Observability, get_active
from repro.oscillator.prc import LinearPRC
from repro.radio.sparse_link import SparseLinkBudget
from repro.spanningtree.mst import tree_weight
from repro.spanningtree.unionfind import UnionFind


def _heavy_edges_from_candidates(
    us: np.ndarray, vs: np.ndarray
) -> list[tuple[int, int]]:
    """Deduplicated sorted edge list from per-node (u, heaviest v) pairs."""
    if us.size == 0:
        return []
    a = np.minimum(us, vs).astype(np.int64)
    b = np.maximum(us, vs).astype(np.int64)
    codes = np.unique((a << np.int64(32)) | b)
    return [(int(c >> 32), int(c & 0xFFFFFFFF)) for c in codes]


def heavy_edge_forest(
    weights: np.ndarray,
    adjacency: np.ndarray,
    node_mask: np.ndarray | None = None,
) -> list[tuple[int, int]]:
    """Each node's heaviest incident edge (Fig. 2's "selecting heavy edge").

    The union over nodes is a forest (it is a subgraph of the maximum
    spanning tree on distinct weights).  Fully vectorized: argmax per row
    (ties → lowest neighbour id), then a unique over packed edge codes.
    ``node_mask`` restricts the forest to the surviving devices (edges
    touching a masked-out node are ignored).
    """
    w = np.where(adjacency, weights, -np.inf)
    if node_mask is not None:
        node_mask = np.asarray(node_mask, dtype=bool)
        w = np.where(node_mask[:, None] & node_mask[None, :], w, -np.inf)
    n = w.shape[0]
    best = np.argmax(w, axis=1)
    finite = np.isfinite(w[np.arange(n), best])
    us = np.nonzero(finite)[0]
    return _heavy_edges_from_candidates(us, best[us])


def heavy_edge_forest_csr(
    budget: SparseLinkBudget, node_mask: np.ndarray | None = None
) -> list[tuple[int, int]]:
    """CSR :func:`heavy_edge_forest` over the proximity graph — O(E)."""
    rows = budget.link_row_ids
    nbr = budget.link_indices
    w = budget.link_power_dbm
    if node_mask is not None:
        node_mask = np.asarray(node_mask, dtype=bool)
        keep = node_mask[rows] & node_mask[nbr]
        rows, nbr, w = rows[keep], nbr[keep], w[keep]
    if rows.size == 0:
        return []
    # heaviest edge per row; ties → lowest neighbour id (dense argmax)
    order = np.lexsort((nbr, -w, rows))
    r_sorted = rows[order]
    first = np.concatenate(([True], r_sorted[1:] != r_sorted[:-1]))
    sel = order[first]
    return _heavy_edges_from_candidates(rows[sel], nbr[sel])


def _kruskal_complete(
    uf: UnionFind,
    edges: list[tuple[int, int]],
    iu: np.ndarray,
    ju: np.ndarray,
    w: np.ndarray,
) -> int:
    """Greedy union over candidate edges sorted by (weight desc, i, j)."""
    stitches = 0
    order = np.lexsort((ju, iu, -w))
    for k in order:
        u, v = int(iu[k]), int(ju[k])
        if uf.union(u, v):
            edges.append((u, v))
            stitches += 1
            if uf.components == 1:
                break
    return stitches


def stitch_forest(
    forest: list[tuple[int, int]],
    weights: np.ndarray,
    adjacency: np.ndarray,
    node_mask: np.ndarray | None = None,
) -> tuple[list[tuple[int, int]], int]:
    """Connect forest components over heaviest available links.

    Returns ``(tree_edges, stitches)``.  Greedy over all inter-component
    edges by descending weight — i.e. Kruskal completion of the forest.
    Equal-weight candidates are taken in (i, j) row-major order, same as
    the historical stable sort over ``triu_indices``.  ``node_mask``
    restricts stitching to the surviving devices (masked-out nodes stay
    isolated singletons).
    """
    n = weights.shape[0]
    uf = UnionFind(n)
    edges = list(forest)
    for u, v in forest:
        uf.union(u, v)
    stitches = 0
    if uf.components > 1:
        w = np.where(adjacency, weights, -np.inf)
        if node_mask is not None:
            node_mask = np.asarray(node_mask, dtype=bool)
            w = np.where(node_mask[:, None] & node_mask[None, :], w, -np.inf)
        iu, ju = np.triu_indices(n, k=1)
        usable = np.isfinite(w[iu, ju])
        iu, ju = iu[usable], ju[usable]
        stitches = _kruskal_complete(uf, edges, iu, ju, w[iu, ju])
    return sorted(edges), stitches


def stitch_forest_csr(
    forest: list[tuple[int, int]],
    budget: SparseLinkBudget,
    node_mask: np.ndarray | None = None,
) -> tuple[list[tuple[int, int]], int]:
    """CSR :func:`stitch_forest` over the proximity graph — O(E log E)."""
    uf = UnionFind(budget.n)
    edges = list(forest)
    for u, v in forest:
        uf.union(u, v)
    stitches = 0
    if uf.components > 1:
        upper = budget.link_row_ids < budget.link_indices
        iu = budget.link_row_ids[upper]
        ju = budget.link_indices[upper]
        w = budget.link_power_dbm[upper]
        if node_mask is not None:
            node_mask = np.asarray(node_mask, dtype=bool)
            keep = node_mask[iu] & node_mask[ju]
            iu, ju, w = iu[keep], ju[keep], w[keep]
        stitches = _kruskal_complete(uf, edges, iu, ju, w)
    return sorted(edges), stitches


def _tree_weight_for(net: D2DNetwork, tree: list[tuple[int, int]]) -> float:
    """Tree weight without densifying a sparse network.

    Weights equal mean link power bitwise (the 0.5·(m + mᵀ)
    symmetrization is the identity on the hashed channel), and the sum is
    sequential in the same sorted edge order in both branches.
    """
    if net.is_sparse:
        us = np.fromiter((u for u, _ in tree), dtype=np.int64, count=len(tree))
        vs = np.fromiter((v for _, v in tree), dtype=np.int64, count=len(tree))
        if us.size == 0:
            return 0.0
        return float(sum(net.sparse_budget.edge_power_lookup(us, vs).tolist()))
    return tree_weight(net.weights, tree)


class FSTSimulation:
    """Run the FST baseline on a prepared :class:`D2DNetwork`.

    ``obs`` follows the same convention as
    :class:`~repro.core.st.STSimulation`: explicit bundle, else the
    ambient :func:`repro.obs.activate` bundle, else a fresh private one.
    """

    def __init__(
        self,
        network: D2DNetwork,
        obs: Observability | None = None,
        *,
        invariants: InvariantChecker | None = None,
        phase_hook: PhaseHook | None = None,
    ) -> None:
        self.network = network
        self.config: PaperConfig = network.config
        self.obs = obs if obs is not None else (get_active() or Observability())
        self.invariants = invariants
        #: forwarded to the mesh-sync kernel (conformance capture)
        self.phase_hook = phase_hook
        self.prc = LinearPRC.from_dissipation(
            self.config.dissipation, self.config.epsilon
        )

    def run(self) -> RunResult:
        cfg = self.config
        net = self.network
        obs = self.obs
        # same contract as STSimulation: a disabled bundle hands the
        # kernels obs=None so the hot loops skip instrumentation entirely
        kobs = obs if obs.enabled else None
        bus = obs.bus
        sparse = net.is_sparse
        batch = net.is_batch
        plan = FaultPlan.from_config(cfg)
        if sparse:
            budget = net.sparse_budget
            kernel_cls = (
                BatchPulseSyncKernel if batch else SparsePulseSyncKernel
            )
            kernel = kernel_cls(
                budget.link_indptr,
                budget.link_indices,
                budget.link_power_dbm,
                self.prc,
                period_ms=cfg.period_ms,
                threshold_dbm=cfg.threshold_dbm,
                refractory_ms=cfg.refractory_ms,
                sync_window_ms=cfg.sync_window_ms,
                fading=budget.fading,
                collision_policy=cfg.collision_policy,
            )
        else:
            kernel = PulseSyncKernel(
                net.link_budget.mean_rx_dbm,
                net.adjacency,
                self.prc,
                period_ms=cfg.period_ms,
                threshold_dbm=cfg.threshold_dbm,
                refractory_ms=cfg.refractory_ms,
                sync_window_ms=cfg.sync_window_ms,
                fading=net.link_budget.fading,
                collision_policy=cfg.collision_policy,
            )
        # FST's deliverable is simultaneous synchronization AND complete
        # mesh neighbour discovery: every device must identity-decode
        # every proximity neighbour at least once (that is what [17]'s
        # protocol produces).  Sync pulses drive the oscillators; one
        # random-slot discovery beacon per device per period ([17]'s
        # random subframe) carries identities.  Convergence is when both
        # finish; whichever finishes first keeps transmitting its
        # per-period traffic until the other catches up.
        with obs.span("fst_run", n=cfg.n_devices, seed=cfg.seed):
            with obs.span("mesh_sync"):
                sync = kernel.run(
                    net.streams.stream("fst-sync"),
                    max_time_ms=cfg.max_time_ms,
                    require_sync=True,
                    obs=kobs,
                    obs_labels={"algorithm": "fst", "stage": "sync"},
                    faults=plan,
                    invariants=self.invariants,
                    phase_hook=self.phase_hook,
                )
            with obs.span("discovery"):
                max_periods = max(1, int(cfg.max_time_ms / cfg.period_ms))
                if sparse:
                    # same condition as the dense mask below, expressed on
                    # the radio-edge axis: link edges with margin to spare
                    required_edges = budget.edge_is_link & (
                        budget.power_dbm
                        >= cfg.threshold_dbm + cfg.discovery_margin_db
                    )
                    discovery_cls = (
                        BatchBeaconDiscovery if batch else SparseBeaconDiscovery
                    )
                    beacons = discovery_cls(
                        budget,
                        threshold_dbm=cfg.threshold_dbm,
                        period_slots=cfg.period_slots,
                        slot_ms=cfg.slot_ms,
                        preambles=cfg.beacon_preambles,
                    ).run(
                        net.streams.stream("fst-beacons"),
                        required=required_edges,
                        max_periods=max_periods,
                        obs=kobs,
                        obs_labels={"algorithm": "fst", "stage": "discovery"},
                        faults=plan,
                    )
                else:
                    beacons = BeaconDiscovery(
                        net.link_budget.mean_rx_dbm,
                        threshold_dbm=cfg.threshold_dbm,
                        period_slots=cfg.period_slots,
                        slot_ms=cfg.slot_ms,
                        preambles=cfg.beacon_preambles,
                        fading=net.link_budget.fading,
                    ).run(
                        net.streams.stream("fst-beacons"),
                        required=net.adjacency
                        & net.link_budget.adjacency(cfg.discovery_margin_db),
                        max_periods=max_periods,
                        obs=kobs,
                        obs_labels={"algorithm": "fst", "stage": "discovery"},
                        faults=plan,
                    )

            time_ms = max(sync.time_ms, beacons.time_ms)
            converged = sync.converged and beacons.complete
            # keep-alive pulses while waiting for the slower of the two goals
            lag_ms = max(0.0, time_ms - sync.time_ms)
            keepalive = int(cfg.n_devices * (lag_ms / cfg.period_ms))

            with obs.span("stitch"):
                # graceful degradation: the basic firefly tree is
                # assembled over the survivors only
                alive = None
                if plan is not None:
                    dead_final = plan.dead_by(time_ms)
                    if dead_final.any():
                        alive = ~dead_final
                if sparse:
                    forest = heavy_edge_forest_csr(budget, node_mask=alive)
                    tree, stitches = stitch_forest_csr(
                        forest, budget, node_mask=alive
                    )
                else:
                    forest = heavy_edge_forest(
                        net.weights, net.adjacency, node_mask=alive
                    )
                    tree, stitches = stitch_forest(
                        forest, net.weights, net.adjacency, node_mask=alive
                    )
            stitch_messages = 2 * stitches  # one RACH2 handshake per stitch
            if bus is not None:
                alive_n = (
                    int(alive.sum()) if alive is not None else cfg.n_devices
                )
                bus.publish(
                    "fragments",
                    time_ms,
                    {"algorithm": "fst"},
                    # components of a forest: nodes minus edges
                    count=max(1, alive_n - len(tree)),
                    largest=alive_n,
                    stitches=stitches,
                )

            # single accounting path: registry counters and the breakdown
            # derive from one bill (see Observability.account_messages)
            breakdown = obs.account_messages(
                "fst",
                {
                    "sync_pulse": (sync.messages, "rach1"),
                    "keep_alive": (keepalive, "rach1"),
                    "discovery": (beacons.messages, "rach1"),
                    "stitch": (stitch_messages, "rach2"),
                },
            )
        return RunResult(
            algorithm="fst",
            n_devices=cfg.n_devices,
            seed=cfg.seed,
            converged=converged,
            time_ms=time_ms,
            messages=sum(breakdown.values()),
            message_breakdown=breakdown,
            tree_edges=tree,
            metrics=obs.metrics.snapshot(),
            extra={
                "fires": sync.fires,
                "instants": sync.instants,
                "final_spread_ms": sync.final_spread_ms,
                "sync_time_ms": sync.time_ms,
                "discovery_time_ms": beacons.time_ms,
                "discovery_periods": beacons.periods,
                "missing_pairs": beacons.missing_pairs,
                "tree_weight": _tree_weight_for(net, tree),
                "forest_components_stitched": stitches,
                **(
                    {
                        "crashed": int(dead_final.sum())
                        if plan is not None and alive is not None
                        else 0,
                        "discovery_retries": beacons.retries,
                        "faults_injected": beacons.faults_injected,
                    }
                    if plan is not None
                    else {}
                ),
            },
        )
