"""ST — the paper's proposed distributed firefly spanning-tree algorithm.

Composition of Algorithms 1–3 over the RSSI-weighted proximity graph:

1. **Discovery** (Algorithm 1 lines 1–5): every device beacons PSs on
   RACH1 for ``discovery_periods`` oscillator periods, filling neighbour
   tables with RSSI weights.  Singleton fragments are trivially synced.
2. **Fragment growth** (Algorithm 1 lines 6–12 + Algorithm 2): Borůvka
   phases over maximum PS-strength edges.  Each phase a fragment
   convergecasts local candidates to its head, the head announces the
   MWOE, and ``H_Connect`` performs the RACH2 handshake over the chosen
   edge; the smaller fragment then *adopts the larger fragment's phase*
   via a RACH2 alignment wave down its own subtree (head election per the
   paper: "choose Sv.head from highest number of node's tree").
   Fragments work in parallel, so a phase lasts as long as its slowest
   fragment (convergecast + broadcast + handshake + alignment wave, one
   hop per slot).  Throughout construction every device keeps firing its
   RACH1 keep-alive once per period (Algorithm 1 line 5's ``F_F_A``).
3. **Final trim** (Algorithm 3 over the finished tree): alignment waves
   leave residual per-hop quantization offsets, so a short pulse-coupled
   run over the tree edges tightens the network into the sync window —
   this is a genuine :class:`~repro.core.pulsesync.PulseSyncKernel` run
   seeded with the residual spread.

Timing model: control actions advance one hop per 1 ms slot (RACH
response time at LTE granularity); all per-fragment work in a phase is
concurrent.  Message accounting is per transmission, split by kind.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.batch import (
    BatchBeaconDiscovery,
    BatchPulseSyncKernel,
    BatchReplayLedger,
    top_k_required_batch,
)
from repro.core.beacon import (
    BeaconDiscovery,
    SparseBeaconDiscovery,
    top_k_required,
    top_k_required_csr,
)
from repro.core.config import PaperConfig
from repro.core.fst import _tree_weight_for
from repro.core.network import D2DNetwork
from repro.core.pulsesync import (
    PhaseHook,
    PulseSyncKernel,
    PulseSyncResult,
    SparsePulseSyncKernel,
)
from repro.core.results import RunResult
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.obs import Observability, get_active
from repro.oscillator.prc import LinearPRC
from repro.spanningtree.boruvka import (
    distributed_boruvka,
    distributed_boruvka_batch,
    distributed_boruvka_csr,
)
from repro.spanningtree.fragment import FragmentSet
from repro.spanningtree.ghs import distributed_ghs
from repro.spanningtree.repair import (
    repair_after_failure,
    repair_after_failure_csr,
)

#: Slots for one H_Connect RACH2 exchange (broadcast + acknowledgement).
HANDSHAKE_SLOTS = 2


def _tree_diameter(start: int, adj: dict[int, list[int]]) -> int:
    """Hop diameter of the tree component containing ``start`` (double BFS)."""

    def farthest(src: int) -> tuple[int, int]:
        seen = {src: 0}
        queue = deque([src])
        far_node, far_dist = src, 0
        while queue:
            u = queue.popleft()
            for v in adj.get(u, ()):
                if v not in seen:
                    seen[v] = seen[u] + 1
                    if seen[v] > far_dist:
                        far_node, far_dist = v, seen[v]
                    queue.append(v)
        return far_node, far_dist

    a, _ = farthest(start)
    _, diameter = farthest(a)
    return diameter


#: Bucket bounds for fragment sizes along the Borůvka growth.
FRAGMENT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class _FragmentReplayLedger:
    """Reference replay state: a :class:`FragmentSet` plus double-BFS.

    The dense and sparse backends replay the Borůvka merge schedule
    through this ledger; the batch backend substitutes
    :class:`~repro.core.batch.BatchReplayLedger`, which answers the same
    size/diameter queries incrementally.  Both produce identical
    integers, so the replay loop is backend-agnostic.
    """

    def __init__(self, n: int) -> None:
        self._frags = FragmentSet(n)
        self._adj: dict[int, list[int]] = {}

    def size_of(self, u: int) -> int:
        return self._frags.size_of(u)

    def diameter_of(self, u: int) -> int:
        return _tree_diameter(u, self._adj)

    def merge(self, u: int, v: int) -> bool:
        merged = self._frags.merge(u, v)
        if merged:
            self._adj.setdefault(u, []).append(v)
            self._adj.setdefault(v, []).append(u)
        return merged

    @property
    def count(self) -> int:
        return self._frags.count

    def sizes(self) -> list[int]:
        return [f.size for f in self._frags.fragments()]

    def all_tree_edges(self) -> list[tuple[int, int]]:
        return self._frags.all_tree_edges()


class STSimulation:
    """Run the proposed ST algorithm on a prepared :class:`D2DNetwork`.

    Parameters
    ----------
    network:
        The prepared topology/channel.
    obs:
        Observability bundle to record into.  Defaults to the ambient
        bundle installed with :func:`repro.obs.activate` (so ``repro
        profile`` aggregates across runs), else a fresh private bundle —
        either way the returned :class:`RunResult` carries a metrics
        snapshot, and ``message_breakdown`` is derived from the registry
        (single accounting path).
    """

    def __init__(
        self,
        network: D2DNetwork,
        obs: Observability | None = None,
        *,
        invariants: InvariantChecker | None = None,
        phase_hook: PhaseHook | None = None,
    ) -> None:
        self.network = network
        self.config: PaperConfig = network.config
        self.obs = obs if obs is not None else (get_active() or Observability())
        self.invariants = invariants
        #: forwarded to the trim kernel (conformance phase-round capture)
        self.phase_hook = phase_hook
        self.prc = LinearPRC.from_dissipation(
            self.config.dissipation, self.config.epsilon
        )

    # ------------------------------------------------------------------
    def _repair_tree(
        self, tree_edges: list[tuple[int, int]], dead_mask: np.ndarray
    ) -> tuple[list[tuple[int, int]], bool, int]:
        """Repair the tree around crashed devices; ``(edges, ok, msgs)``."""
        net = self.network
        failed = np.flatnonzero(dead_mask)
        if net.is_sparse:
            rep = repair_after_failure_csr(
                tree_edges, failed, net.sparse_budget
            )
        else:
            rep = repair_after_failure(
                tree_edges, failed, net.weights, net.adjacency
            )
        return rep.tree_edges, rep.repaired, rep.messages

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        cfg = self.config
        net = self.network
        n = cfg.n_devices
        obs = self.obs
        # a disabled bundle passes no obs down to the radio loops at all,
        # so they run their true zero-instrumentation path; driver-level
        # accounting (bills, fragment gauges) stays live either way
        kobs = obs if obs.enabled else None
        bus = obs.bus

        with obs.span("st_run", n=n, seed=cfg.seed):
            # ---- 1. discovery window ------------------------------------
            # ST only needs each device to decode its heaviest detectable
            # neighbour (the Borůvka seed edge); heavy edges are strong, so
            # they win the capture race quickly even in dense deployments.
            # A floor of ``discovery_periods`` beacon periods is always paid.
            sparse = net.is_sparse
            batch = net.is_batch
            plan = FaultPlan.from_config(cfg)
            max_periods = max(1, int(cfg.max_time_ms / cfg.period_ms))
            with obs.span("discovery"):
                if sparse:
                    budget = net.sparse_budget
                    discovery_cls = (
                        BatchBeaconDiscovery if batch else SparseBeaconDiscovery
                    )
                    disc = discovery_cls(
                        budget,
                        threshold_dbm=cfg.threshold_dbm,
                        period_slots=cfg.period_slots,
                        slot_ms=cfg.slot_ms,
                        preambles=cfg.beacon_preambles,
                    ).run(
                        net.streams.stream("st-beacons"),
                        required=(
                            top_k_required_batch(budget)
                            if batch
                            else top_k_required_csr(budget, k=1)
                        ),
                        max_periods=max_periods,
                        obs=kobs,
                        obs_labels={"algorithm": "st", "stage": "discovery"},
                        faults=plan,
                    )
                else:
                    disc = BeaconDiscovery(
                        net.link_budget.mean_rx_dbm,
                        threshold_dbm=cfg.threshold_dbm,
                        period_slots=cfg.period_slots,
                        slot_ms=cfg.slot_ms,
                        preambles=cfg.beacon_preambles,
                        fading=net.link_budget.fading,
                    ).run(
                        net.streams.stream("st-beacons"),
                        required=top_k_required(net.weights, net.adjacency, k=1),
                        max_periods=max_periods,
                        obs=kobs,
                        obs_labels={"algorithm": "st", "stage": "discovery"},
                        faults=plan,
                    )
            discovery_periods = max(disc.periods, cfg.discovery_periods)
            discovery_ms = discovery_periods * cfg.period_ms
            # actual beacon transmissions (backoff/crash silence included)
            # plus the always-paid floor; without faults this equals the
            # historical n * discovery_periods exactly
            discovery_msgs = disc.messages + n * max(
                0, cfg.discovery_periods - disc.periods
            )

            # ---- 2. fragment construction with timing replay ------------
            # (merge rule per config: plain Borůvka or level-based GHS; both
            # produce per-phase chosen-edge records the replay consumes)
            with obs.span("construction", merge_rule=cfg.merge_rule):
                with obs.span("merge_schedule"):
                    if cfg.merge_rule == "ghs":
                        # GHS has no CSR port yet — a sparse network pays
                        # the one-off densify (net.densified records it)
                        boruvka = distributed_ghs(net.weights, net.adjacency)
                    elif sparse:
                        # link weights ARE the symmetrized PS weights,
                        # bitwise (see D2DNetwork docstring)
                        boruvka_fn = (
                            distributed_boruvka_batch
                            if batch
                            else distributed_boruvka_csr
                        )
                        boruvka = boruvka_fn(
                            n,
                            budget.link_indptr,
                            budget.link_indices,
                            budget.link_power_dbm,
                        )
                    else:
                        boruvka = distributed_boruvka(net.weights, net.adjacency)
                # the replay ledger answers the size/diameter queries the
                # timing model needs; the batch variant answers them with
                # O(1) oracle distances over the final forest instead of a
                # BFS per merge — identical integers either way
                if batch:
                    ledger = BatchReplayLedger(n, boruvka.edges)
                else:
                    ledger = _FragmentReplayLedger(n)
                handshake_msgs = 0
                align_msgs = 0
                construction_slots = 0
                max_wave_depth = 0
                frag_gauge = obs.metrics.gauge(
                    "fragments_active",
                    help="live fragments after each Borůvka phase",
                    unit="fragments",
                )
                frag_hist = obs.metrics.histogram(
                    "fragment_size",
                    buckets=FRAGMENT_SIZE_BUCKETS,
                    help="fragment sizes observed after each Borůvka phase",
                    unit="devices",
                )

                for k, phase in enumerate(boruvka.phases):
                    with obs.span(
                        "boruvka_phase", phase=k, merges=len(phase.chosen_edges)
                    ):
                        phase_slots = 0
                        for u, v in phase.chosen_edges:
                            size_u = ledger.size_of(u)
                            size_v = ledger.size_of(v)
                            diam_u = ledger.diameter_of(u)
                            diam_v = ledger.diameter_of(v)
                            # control round: convergecast up + announce down
                            # the larger side, then the RACH2 handshake (u, v)
                            control = 2 * max(diam_u, diam_v) + HANDSHAKE_SLOTS
                            handshake_msgs += 2
                            # the smaller fragment re-phases to the larger
                            # one's clock
                            if size_u >= size_v:
                                loser_size, loser_diam = size_v, diam_v
                            else:
                                loser_size, loser_diam = size_u, diam_u
                            align_msgs += loser_size
                            max_wave_depth = max(max_wave_depth, loser_diam + 1)
                            phase_slots = max(
                                phase_slots, control + loser_diam + 1
                            )

                            ledger.merge(u, v)
                            if obs.trace is not None:
                                obs.trace.emit(
                                    discovery_ms
                                    + (construction_slots + phase_slots)
                                    * cfg.slot_ms,
                                    "merge",
                                    u=u,
                                    v=v,
                                    phase=k,
                                    algorithm="st",
                                )
                        construction_slots += phase_slots

                        sizes = ledger.sizes()
                        frag_gauge.set(len(sizes), algorithm="st")
                        for size in sizes:
                            frag_hist.observe(size, algorithm="st", phase=k)
                        obs.probes.record(
                            discovery_ms + construction_slots * cfg.slot_ms,
                            "fragments",
                            force=True,
                            phase=k,
                            count=len(sizes),
                            largest=max(sizes),
                        )
                        if bus is not None:
                            bus.publish(
                                "fragments",
                                discovery_ms + construction_slots * cfg.slot_ms,
                                {"algorithm": "st"},
                                phase=k,
                                count=len(sizes),
                                largest=max(sizes),
                                merges=len(phase.chosen_edges),
                            )

            construction_ms = construction_slots * cfg.slot_ms
            keepalive_msgs = int(n * (construction_ms / cfg.period_ms))
            # Algorithm 1 line 5: every phase each fragment runs its FFA
            # ranking/keep-alive rounds on RACH1 (all fragments together
            # cover all n devices); these ride alongside the control traffic.
            ffa_msgs = cfg.ffa_rounds_per_phase * n * boruvka.phase_count

            # ---- 3. final trim: PCO run over the tree -------------------
            with obs.span("trim"):
                tree_edges = ledger.all_tree_edges()
                converged_tree = ledger.count == 1
                start_ms = discovery_ms + construction_ms

                # graceful degradation: devices that crashed before the
                # trim are cut out of the tree and the survivors re-merge
                # via the seeded repair protocol instead of aborting
                repair_msgs = 0
                repairs_done = 0
                crashed_before = 0
                active_mask = None
                if plan is not None:
                    dead_now = plan.dead_by(start_ms)
                    crashed_before = int(dead_now.sum())
                    active_mask = ~dead_now
                    if dead_now.any() and active_mask.any():
                        with obs.span("repair", crashed=crashed_before):
                            tree_edges, converged_tree, msgs = (
                                self._repair_tree(tree_edges, dead_now)
                            )
                            repair_msgs += msgs
                            repairs_done += 1
                    elif dead_now.any():
                        converged_tree = False

                # Residual spread after alignment: the RACH2 wave carries the
                # head's clock and every relay compensates the known 1-slot
                # hop delay, so the residual is bounded by the per-hop timing
                # jitter (~1 slot) plus the final merge's handshake slot —
                # independent of tree depth (MEMFIS-style clock adoption).
                residual_slots = 2
                window = min(0.5, residual_slots * cfg.slot_ms / cfg.period_ms)
                phase_rng = net.streams.stream("st-trim-phases")
                base = float(phase_rng.uniform(0.0, 1.0 - window))
                initial_phases = base + phase_rng.uniform(0.0, window, size=n)

                kernel_opts = dict(
                    period_ms=cfg.period_ms,
                    threshold_dbm=cfg.threshold_dbm,
                    refractory_ms=cfg.refractory_ms,
                    sync_window_ms=cfg.sync_window_ms,
                    collision_policy=cfg.collision_policy,
                )
                if sparse:
                    # both directions of each tree edge, powers looked up
                    # from the radio CSR — no (n, n) allocation
                    eu = np.fromiter(
                        (u for u, _ in tree_edges),
                        dtype=np.int64,
                        count=len(tree_edges),
                    )
                    ev = np.fromiter(
                        (v for _, v in tree_edges),
                        dtype=np.int64,
                        count=len(tree_edges),
                    )
                    tx = np.concatenate((eu, ev))
                    rx = np.concatenate((ev, eu))
                    kernel_cls = (
                        BatchPulseSyncKernel if batch else SparsePulseSyncKernel
                    )
                    kernel = kernel_cls.from_edges(
                        n,
                        tx,
                        rx,
                        budget.edge_power_lookup(tx, rx),
                        self.prc,
                        fading=budget.fading,
                        **kernel_opts,
                    )
                else:
                    tree_adj = np.zeros((n, n), dtype=bool)
                    for u, v in tree_edges:
                        tree_adj[u, v] = tree_adj[v, u] = True
                    kernel = PulseSyncKernel(
                        net.link_budget.mean_rx_dbm,
                        tree_adj,
                        self.prc,
                        fading=net.link_budget.fading,
                        **kernel_opts,
                    )
                if active_mask is not None and not active_mask.any():
                    # total extinction before the trim: nothing to sync
                    trim = PulseSyncResult(
                        converged=False,
                        time_ms=start_ms,
                        messages=0,
                        fires=0,
                        instants=0,
                        final_spread_ms=float("inf"),
                    )
                else:
                    trim = kernel.run(
                        net.streams.stream("st-trim"),
                        initial_phases=np.clip(initial_phases, 0.0, 1.0 - 1e-9),
                        start_time_ms=start_ms,
                        max_time_ms=max(cfg.max_time_ms - start_ms, cfg.period_ms),
                        active=active_mask,
                        obs=kobs,
                        obs_labels={"algorithm": "st", "stage": "trim"},
                        faults=plan,
                        invariants=self.invariants,
                        phase_hook=self.phase_hook,
                    )

                # devices that crashed *during* the trim also get cut out
                # and the survivors' tree repaired (late repair pass)
                dead_final = None
                if plan is not None:
                    dead_final = plan.dead_by(trim.time_ms)
                    late = dead_final & ~dead_now
                    if late.any() and not dead_final.all():
                        with obs.span("repair", crashed=int(late.sum())):
                            tree_edges, converged_tree, msgs = (
                                self._repair_tree(tree_edges, dead_final)
                            )
                            repair_msgs += msgs
                            repairs_done += 1
                    elif late.any():
                        converged_tree = False

            time_ms = trim.time_ms
            converged = converged_tree and trim.converged
            if plan is not None:
                if crashed_before:
                    obs.metrics.counter(
                        "faults_injected_total",
                        help="fault events injected by the active FaultPlan",
                        unit="events",
                    ).inc(crashed_before, kind="crash", algorithm="st")
                if repairs_done:
                    obs.metrics.counter(
                        "repairs_total",
                        help="spanning-tree repair passes after crashes",
                        unit="repairs",
                    ).inc(repairs_done, algorithm="st")

            # message accounting: one bill, recorded into the metrics
            # registry AND returned as the breakdown — a single source of
            # truth for Fig. 4 totals and observability counters
            bill: dict[str, tuple[int, str]] = {
                "discovery": (discovery_msgs, "rach1"),
                "keep_alive": (keepalive_msgs, "rach1"),
                "ffa_rounds": (ffa_msgs, "rach1"),
                "trim_sync": (trim.messages, "rach1"),
                "handshake": (handshake_msgs, "rach2"),
                "alignment": (align_msgs, "rach2"),
            }
            if plan is not None:
                bill["repair"] = (repair_msgs, "rach2")
            for kind, count in boruvka.counter.as_dict().items():
                bill[f"boruvka_{kind}"] = (count, "rach2")
            breakdown = obs.account_messages("st", bill)
            messages = sum(breakdown.values())

        return RunResult(
            algorithm="st",
            n_devices=n,
            seed=cfg.seed,
            converged=converged,
            time_ms=time_ms,
            messages=messages,
            message_breakdown=breakdown,
            tree_edges=tree_edges,
            extra={
                "phases": boruvka.phase_count,
                "construction_ms": construction_ms,
                "trim_ms": trim.time_ms - start_ms,
                "trim_fires": trim.fires,
                "tree_weight": _tree_weight_for(net, tree_edges),
                "final_spread_ms": trim.final_spread_ms,
                "max_wave_depth": max_wave_depth,
                **(
                    {
                        "repairs": repairs_done,
                        "crashed": int(dead_final.sum()),
                        "discovery_retries": disc.retries,
                        "faults_injected": disc.faults_injected,
                    }
                    if plan is not None
                    else {}
                ),
            },
            metrics=obs.metrics.snapshot(),
        )
