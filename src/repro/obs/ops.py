"""The ops plane: wall-clock observability that never touches canon.

Everything in :mod:`repro.obs` so far lives on the *deterministic
plane*: metrics, spans and telemetry that are pure functions of the
seed, byte-identical across replays, and therefore admissible in golden
traces and service responses.  That contract is exactly why request
latency has no home there — wall clock poisons byte-determinism.

:class:`OpsPlane` is the second, explicitly **non-canonical** plane an
operator of ``repro serve`` needs:

* **request-scoped tracing** — :class:`TraceContext` (trace id + parent
  span id) generated per service request and per world step, propagated
  through ``DiscoveryApp`` → ``SteadyStateWorld.step`` →
  ``Engine.advance`` and across ``shard/runner.py`` pool workers;
  finished spans are queryable via ``GET /trace/{id}`` and ``repro
  trace``;
* **latency SLOs** — per-endpoint wall-clock histograms with
  :class:`SLOObjective` targets (e.g. p99 ≤ 10 ms for ``/near``), a
  :class:`SLOBurnRate` analyzer on the plane's own PR 5 telemetry bus
  emitting structured :class:`~repro.obs.analyzers.Alert` records, and
  exemplar trace ids attached to slow histogram buckets;
* a sibling :class:`~repro.obs.metrics.MetricsRegistry` and
  :class:`~repro.obs.stream.TelemetryBus` that are **excluded** from
  ``GET /metrics``, ``metrics_document`` and every conformance artifact.

The separation is load-bearing, not cosmetic: SLO alerts depend on the
machine's clock, so they must not land in the world's ``alerts_total``
counter or its SSE stream — the ops plane gets its own bus instead, and
``tests/test_service_ops.py`` proves service responses and goldens stay
byte-identical with the plane on and off.

The hot path is built for a ≤ 5% overhead budget on a ~100 µs request
(``bench_service.py`` enforces ``ops_overhead_ratio``): requests are
queued as tuples and drained in batches (``flush_interval``) into the
histogram, the SLO windows and the flight recorder, span objects are
only built for sampled requests (``trace_sample``, 1 = trace all), and
a 5xx flushes immediately so post-mortem dumps stay timely.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.analyzers import Analyzer
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import TelemetryBus, TelemetryEvent

#: Latency histogram bucket bounds in milliseconds (service request
#: scale: sub-ms cache hits through a 1 s pathological tail).
LATENCY_BUCKETS_MS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0)

#: Prometheus ``le`` label per bucket, precomputed once — ``repr`` per
#: request was a measurable slice of the overhead budget.
_LE_LABELS = tuple(repr(b) for b in LATENCY_BUCKETS_MS)

#: Retained finished traces (whole traces are evicted FIFO, counted).
DEFAULT_TRACE_CAPACITY = 256

#: Ring capacity of the plane's private telemetry bus.
DEFAULT_OPS_BUS_CAPACITY = 2048

#: Trace 1-in-N requests by default (1 = every request).  Span objects
#: cost a few µs each; sampling keeps the ops plane inside its ≤ 5%
#: overhead budget while exemplars still reach every latency bucket.
DEFAULT_TRACE_SAMPLE = 16

#: Queued request records drained per batch; bounds both the amortised
#: per-request cost and how stale SLO windows may run between reads
#: (readers always flush first, so staleness never reaches a scrape).
#: Larger batches amortise the drain's cache warm-up over more records.
DEFAULT_FLUSH_INTERVAL = 256


@dataclass(frozen=True)
class TraceContext:
    """One position in a trace: trace id + own span id + parent span id.

    Frozen and picklable on purpose — shard pool workers receive the
    driver's context in their job tuple and mint child spans under it.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def child(self, span_id: str) -> "TraceContext":
        """A context for a child span (this span becomes the parent)."""
        return TraceContext(self.trace_id, span_id, self.span_id)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


@dataclass(frozen=True)
class OpsSpan:
    """One finished wall-clock span inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_s: float
    duration_ms: float
    status: str = "ok"  # "ok" | "error"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "OpsSpan":
        return cls(
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            parent_id=doc.get("parent_id"),
            name=str(doc["name"]),
            start_s=float(doc["start_s"]),
            duration_ms=float(doc["duration_ms"]),
            status=str(doc.get("status", "ok")),
            attrs=dict(doc.get("attrs", {})),
        )


# ----------------------------------------------------------------------
# SLOs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLOObjective:
    """One service-level objective over the request stream.

    ``kind="latency"`` counts a request as *bad* when its wall time
    exceeds ``threshold_ms``; ``kind="availability"`` when its status is
    a 5xx.  ``objective`` is the required good fraction, so the error
    budget is ``1 - objective`` and the burn rate is the observed bad
    fraction divided by that budget (burn 1.0 = exactly on budget).
    """

    name: str
    endpoint: str  # endpoint template, or "*" for every endpoint
    kind: str = "latency"  # "latency" | "availability"
    threshold_ms: float = 10.0
    objective: float = 0.99

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")

    def is_bad(self, *, elapsed_ms: float, status: int) -> bool:
        if self.kind == "availability":
            return status >= 500
        return elapsed_ms > self.threshold_ms


def default_slos() -> tuple[SLOObjective, ...]:
    """The stock objectives ``repro serve`` runs under."""
    return (
        SLOObjective(
            name="near-p99",
            endpoint="/near/{ue}",
            kind="latency",
            threshold_ms=10.0,
            objective=0.99,
        ),
        SLOObjective(
            name="all-p99",
            endpoint="*",
            kind="latency",
            threshold_ms=50.0,
            objective=0.99,
        ),
        SLOObjective(
            name="availability",
            endpoint="*",
            kind="availability",
            objective=0.999,
        ),
    )


class SLOBurnRate(Analyzer):
    """Burn-rate analyzer over the ops plane's request stream.

    Maintains a sliding window of the last ``window`` matching requests
    and fires one structured alert per episode when the burn rate —
    observed bad fraction over the SLO's error budget — reaches
    ``burn_limit`` with at least ``min_events`` in the window.  The
    detector re-arms once the burn drops back under the limit, so a
    sustained violation yields one alert, not one per request.
    Availability violations are ``critical``; latency ones ``warning``.

    Fed in batches through :meth:`ingest` by :meth:`OpsPlane.flush` (the
    window count is maintained incrementally — no per-request window
    scan); the :class:`~repro.obs.analyzers.Analyzer` ``observe`` hook
    remains as a single-event adapter so the class still works as an
    ordinary bus subscriber.
    """

    name = "slo_burn_rate"
    topics = ("request",)

    def __init__(
        self,
        slo: SLOObjective,
        *,
        window: int = 200,
        min_events: int = 20,
        burn_limit: float = 2.0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        super().__init__()
        self.slo = slo
        self.window = int(window)
        self.min_events = int(min_events)
        self.burn_limit = float(burn_limit)
        #: sequence numbers (per matching request) of *bad* requests —
        #: a sparse window: the healthy path never touches a ring at
        #: all, which is what keeps three analyzers inside the ops
        #: overhead budget
        self._bad_seq: deque[int] = deque()
        self.seen = 0
        self.burn = 0.0
        self._armed = True

    def ingest(
        self, records: list[tuple], summary: tuple | None = None
    ) -> None:
        """Account a batch of request records (see ``_REQUEST_RECORD``).

        ``summary`` is the plane's per-batch digest ``(counts, maxes,
        five_xx_endpoint)`` — when the window holds no bad requests and
        the digest proves the whole batch is clean for this SLO, the
        batch reduces to a counter bump (O(endpoints), not O(records)).
        """
        slo = self.slo
        endpoint_filter = slo.endpoint
        match_all = endpoint_filter == "*"
        availability = slo.kind == "availability"
        threshold_ms = slo.threshold_ms
        threshold_s = threshold_ms / 1000.0  # records carry raw seconds
        if summary is not None and not self._bad_seq:
            counts, maxes, five_xx_endpoint = summary
            if availability:
                # the digest only carries the *first* 5xx endpoint, so
                # any 5xx sends the whole batch down the slow path
                clean = five_xx_endpoint is None
            elif match_all:
                clean = (
                    max(maxes.values()) <= threshold_ms if maxes else True
                )
            else:
                clean = maxes.get(endpoint_filter, 0.0) <= threshold_ms
            if clean:
                if match_all:
                    matching = sum(counts.values())
                else:
                    matching = sum(
                        n
                        for key, n in counts.items()
                        if key[0] == endpoint_filter
                    )
                if matching:
                    self.seen += matching
                    self.burn = 0.0
                    if min(self.seen, self.window) >= self.min_events:
                        self._armed = True
                return
        budget = 1.0 - slo.objective
        bad_seq = self._bad_seq
        window = self.window
        min_events = self.min_events
        burn_limit = self.burn_limit
        seen = self.seen
        for rec in records:
            if not match_all and rec[0] != endpoint_filter:
                continue
            seen += 1
            if rec[2] >= 500 if availability else rec[3] > threshold_s:
                bad_seq.append(seen)
            elif not bad_seq:
                continue  # all-good window: burn already 0, stay cheap
            floor = seen - window
            while bad_seq and bad_seq[0] <= floor:
                bad_seq.popleft()
            n = window if seen > window else seen
            if not bad_seq:
                self.burn = 0.0
                if n >= min_events:
                    self._armed = True
                continue
            burn = self.burn = (len(bad_seq) / n) / budget
            if n >= min_events:
                if burn >= burn_limit:
                    if self._armed:
                        self._armed = False
                        severity = (
                            "critical" if availability else "warning"
                        )
                        self.fire(
                            rec[6] * 1000.0,
                            severity,
                            f"SLO {slo.name} burning at {burn:.1f}x budget "
                            f"({len(bad_seq) / n:.1%} bad over last {n} "
                            f"requests)",
                            slo=slo.name,
                            kind=slo.kind,
                            endpoint=endpoint_filter,
                            burn=burn,
                            window=n,
                        )
                else:
                    self._armed = True
        self.seen = seen

    def observe(self, event: TelemetryEvent) -> None:
        """Bus-subscriber adapter: account one ``request`` event."""
        self.ingest(
            [
                (
                    event.labels.get("endpoint", ""),
                    event.labels.get("method", ""),
                    int(event.values.get("status", 0)),
                    float(event.values.get("elapsed_ms", event.value))
                    / 1000.0,
                    event.labels.get("trace"),
                    event.labels.get("endpoint", ""),
                    event.time_ms / 1000.0,
                )
            ]
        )

    def status(self) -> dict[str, Any]:
        """JSON-safe snapshot for ``GET /ops/slo`` (updates the gauge —
        deliberately here and not per request, which was measurable)."""
        if self.bus is not None and self.bus.metrics is not None:
            self.bus.metrics.gauge(
                "slo_burn_rate",
                help="observed bad fraction over the SLO error budget",
            ).set(self.burn, slo=self.slo.name)
        return {
            "slo": self.slo.name,
            "endpoint": self.slo.endpoint,
            "kind": self.slo.kind,
            "threshold_ms": self.slo.threshold_ms,
            "objective": self.slo.objective,
            "seen": self.seen,
            "window": min(self.seen, self.window),
            "bad_in_window": len(self._bad_seq),
            "burn_rate": self.burn,
            "alerts": len(self.alerts),
        }


# ----------------------------------------------------------------------
# the plane
# ----------------------------------------------------------------------
class OpsPlane:
    """Sibling registry + trace store + SLO machinery for one service.

    Holds its own :class:`MetricsRegistry` and :class:`TelemetryBus`
    (never the world's), a bounded store of finished traces, and one
    :class:`SLOBurnRate` analyzer per objective.  ``clock`` is
    injectable so tests can drive deterministic latencies.

    Request accounting is batched: :meth:`observe_request` appends one
    tuple (the ``_REQUEST_RECORD`` layout) and :meth:`flush` drains the
    queue — every ``flush_interval`` records, immediately on a 5xx, and
    before any reader (``slo_status``, the flight bundle) looks.  Spans
    are only materialised for 1-in-``trace_sample`` requests (1 = all).
    """

    def __init__(
        self,
        *,
        slos: tuple[SLOObjective, ...] | None = None,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        bus_capacity: int = DEFAULT_OPS_BUS_CAPACITY,
        flight: Any | None = None,
        clock: Callable[[], float] = time.perf_counter,
        burn_window: int = 200,
        burn_min_events: int = 20,
        burn_limit: float = 2.0,
        trace_sample: int = DEFAULT_TRACE_SAMPLE,
        flush_interval: int = DEFAULT_FLUSH_INTERVAL,
    ) -> None:
        if trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if trace_sample < 1:
            raise ValueError("trace_sample must be >= 1")
        if flush_interval < 1:
            raise ValueError("flush_interval must be >= 1")
        self.metrics = MetricsRegistry()
        self.bus = TelemetryBus(capacity=bus_capacity, metrics=self.metrics)
        self.trace_capacity = int(trace_capacity)
        self.trace_sample = int(trace_sample)
        self.flush_interval = int(flush_interval)
        self.clock = clock
        self._traces: OrderedDict[str, list[OpsSpan]] = OrderedDict()
        self.traces_evicted = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        #: monotone request counter driving trace sampling; public so
        #: the app's inlined hot path can bump it without a method call
        self.request_seq = 0
        self._raw: list[tuple] = []
        self.exemplars: dict[tuple[str, str], str] = {}
        self.analyzers: list[SLOBurnRate] = [
            SLOBurnRate(
                slo,
                window=burn_window,
                min_events=burn_min_events,
                burn_limit=burn_limit,
            )
            for slo in (slos if slos is not None else default_slos())
        ]
        for analyzer in self.analyzers:
            self.bus.subscribe(analyzer)
        self.flight = flight
        if flight is not None:
            self.bus.subscribe(flight)
        # hot-path metric handles, resolved once (per-request registry
        # lookups were a measurable slice of the overhead budget)
        self._latency_hist = self.metrics.histogram(
            "request_latency_ms",
            buckets=LATENCY_BUCKETS_MS,
            help="wall-clock request latency by endpoint (ops plane only)",
            unit="ms",
        )
        self._bound_hists: dict[str, Any] = {}
        self._requests_counter = self.metrics.counter(
            "ops_requests_total",
            help="requests accounted by the ops plane",
            unit="requests",
        )
        self._spans_counter = self.metrics.counter(
            "ops_spans_total",
            help="wall-clock spans recorded by the ops plane",
            unit="spans",
        )
        self._evicted_counter = self.metrics.counter(
            "ops_traces_evicted_total",
            help="finished traces evicted from the bounded store",
            unit="traces",
        )

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def new_trace_id(self) -> str:
        return f"t{next(self._trace_ids):08x}"

    def context(self, parent: TraceContext | None = None) -> TraceContext:
        """Mint a context without opening a span.

        For manual span recording across process boundaries: the shard
        driver mints one context per ``run_city``, ships it to the pool
        workers (who build span *documents* under it, ids prefixed by
        shard so they cannot collide), then records the driver-side span
        itself via :meth:`record_span`.
        """
        return self._new_context(parent)

    def _new_context(self, parent: TraceContext | None) -> TraceContext:
        span_id = f"s{next(self._span_ids):x}"
        if parent is None:
            return TraceContext(self.new_trace_id(), span_id, None)
        return parent.child(span_id)

    @contextmanager
    def span(
        self, name: str, *, parent: TraceContext | None = None, **attrs: Any
    ) -> Iterator[TraceContext]:
        """Open a wall-clock span; yields the context for child spans.

        With ``parent=None`` a fresh trace id is minted — that is the
        "per service request and per world step" generation point.
        """
        ctx = self._new_context(parent)
        start = self.clock()
        status = "ok"
        try:
            yield ctx
        except BaseException:
            status = "error"
            raise
        finally:
            self.record_span(
                OpsSpan(
                    trace_id=ctx.trace_id,
                    span_id=ctx.span_id,
                    parent_id=ctx.parent_id,
                    name=name,
                    start_s=start,
                    duration_ms=(self.clock() - start) * 1000.0,
                    status=status,
                    attrs=attrs,
                )
            )

    def record_span(self, span: OpsSpan) -> None:
        """Store one finished span, evicting whole old traces when full."""
        spans = self._traces.get(span.trace_id)
        if spans is None:
            while len(self._traces) >= self.trace_capacity:
                self._traces.popitem(last=False)
                self.traces_evicted += 1
                self._evicted_counter.inc(1)
            spans = self._traces[span.trace_id] = []
        spans.append(span)
        self._spans_counter.inc(1, name=span.name)

    def ingest(self, span_docs: list[dict[str, Any]]) -> int:
        """Adopt spans recorded out-of-process (shard pool workers)."""
        for doc in span_docs:
            self.record_span(OpsSpan.from_dict(doc))
        return len(span_docs)

    def trace(self, trace_id: str) -> list[OpsSpan] | None:
        """Finished spans of one trace (start order), or ``None``."""
        self.flush()  # queued request spans materialise before any read
        spans = self._traces.get(trace_id)
        if spans is None:
            return None
        return sorted(spans, key=lambda s: (s.start_s, s.span_id))

    def trace_ids(self) -> list[str]:
        """Retained trace ids, oldest first."""
        self.flush()
        return list(self._traces)

    # ------------------------------------------------------------------
    # request accounting
    # ------------------------------------------------------------------
    def sample_request(self) -> bool:
        """True when the next request should carry a full trace span."""
        seq = self.request_seq = self.request_seq + 1
        return self.trace_sample == 1 or seq % self.trace_sample == 1

    def observe_request(
        self,
        endpoint: str,
        method: str,
        status: int,
        elapsed_s: float,
        trace: TraceContext | None = None,
        path: str | None = None,
    ) -> None:
        """Queue one served request for batched accounting.

        Record layout (``_REQUEST_RECORD``): ``(endpoint, method,
        status, elapsed_s, ctx, path, start_s)`` where ``start_s`` is on
        the plane's ``clock``, floats are stored raw (unit conversion
        happens at flush/render time) and ``ctx`` is the request's
        :class:`TraceContext` or ``None``.  For traced records
        :meth:`flush` materialises the request span itself — callers
        passing ``trace`` must not also wrap the request in
        :meth:`span`, or the trace shows it twice.  A 5xx drains the
        queue right away so the flight recorder can dump while the
        evidence is fresh.
        """
        self._raw.append(
            (
                endpoint,
                method,
                status,
                elapsed_s,
                trace,
                endpoint if path is None else path,
                self.clock(),
            )
        )
        if status >= 500 or len(self._raw) >= self.flush_interval:
            self.flush()

    def flush(self) -> int:
        """Drain queued request records into histogram/SLO/flight state.

        Also materialises queued request spans.  Called automatically
        every ``flush_interval`` requests, on any 5xx, and by every
        reader (:meth:`slo_status`, :meth:`trace`, the app's ops
        endpoints) — so a scrape never sees a stale window.
        """
        raw = self._raw
        if not raw:
            return 0
        self._raw = []
        bound = self._bound_hists
        hist = self._latency_hist
        exemplars = self.exemplars
        le_labels = _LE_LABELS
        bucket_bounds = LATENCY_BUCKETS_MS
        first_bound = bucket_bounds[0]
        counts: dict[tuple[str, str, int], int] = {}
        maxes: dict[str, float] = {}
        five_xx_endpoint: str | None = None
        for rec in raw:
            endpoint = rec[0]
            elapsed_ms = rec[3] * 1000.0
            entry = bound.get(endpoint)
            if entry is None:
                h = hist.bound(endpoint=endpoint)
                # unwrap the bound view once: this loop is the hottest
                # code the plane owns and the method call was measurable
                entry = bound[endpoint] = h._sample
            if elapsed_ms <= first_bound:  # lowest bucket, the common case
                entry.counts[0] += 1
            else:
                for i, b in enumerate(bucket_bounds):
                    if elapsed_ms <= b:
                        entry.counts[i] += 1
                        break
                else:
                    entry.counts[-1] += 1
            entry.sum += elapsed_ms
            entry.count += 1
            key = (endpoint, rec[1], rec[2])
            counts[key] = counts.get(key, 0) + 1
            if elapsed_ms > maxes.get(endpoint, 0.0):
                maxes[endpoint] = elapsed_ms
            if rec[2] >= 500 and five_xx_endpoint is None:
                five_xx_endpoint = endpoint
            ctx = rec[4]
            if ctx is not None:
                trace_id = ctx.trace_id
                for i, b in enumerate(bucket_bounds):
                    if elapsed_ms <= b:
                        exemplars[(endpoint, le_labels[i])] = trace_id
                        break
                else:
                    exemplars[(endpoint, "+inf")] = trace_id
                # materialise the request span here, off the hot path:
                # OpsSpan construction plus the labelled counter inc
                # cost ~10x the record append they would otherwise ride
                self.record_span(
                    OpsSpan(
                        trace_id=trace_id,
                        span_id=ctx.span_id,
                        parent_id=ctx.parent_id,
                        # endpoint template, not raw path: span names
                        # label ops_spans_total and must stay bounded
                        name=f"{rec[1]} {endpoint}",
                        start_s=rec[6],
                        duration_ms=elapsed_ms,
                        status="error" if rec[2] >= 500 else "ok",
                        attrs={"path": rec[5]},
                    )
                )
        inc = self._requests_counter.inc
        for (endpoint, method, status), n in counts.items():
            inc(n, endpoint=endpoint, method=method, status=str(status))
        summary = (counts, maxes, five_xx_endpoint)
        for analyzer in self.analyzers:
            analyzer.ingest(raw, summary)
        flight = self.flight
        if flight is not None:
            if five_xx_endpoint is not None:
                flight.arm(f"5xx:{five_xx_endpoint}")
            flight.ingest_requests(raw)
            flight.maybe_dump()
        return len(raw)

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def slo_status(self) -> dict[str, Any]:
        """The ``GET /ops/slo`` document: objectives, burn, exemplars."""
        self.flush()
        return {
            "slos": [a.status() for a in self.analyzers],
            "alerts": [a.to_dict() for a in self.bus.alerts],
            "exemplars": [
                {"endpoint": endpoint, "le": le, "trace_id": trace_id}
                for (endpoint, le), trace_id in sorted(self.exemplars.items())
            ],
            "traces_retained": len(self._traces),
            "traces_evicted": self.traces_evicted,
        }


# ----------------------------------------------------------------------
# process-default plane
# ----------------------------------------------------------------------
# ``repro conformance run --ops`` needs every internally constructed
# Observability bundle — golden captures build private ones — to carry
# the ops plane, so that replaying the corpus under full ops
# instrumentation still matches the committed bytes.  A module-level
# default is the only seam that reaches them without threading a
# parameter through every driver.
_DEFAULT: OpsPlane | None = None


def default_plane() -> OpsPlane | None:
    """The process-default ops plane adopted by new bundles, if any."""
    return _DEFAULT


def install_default(plane: OpsPlane | None) -> OpsPlane | None:
    """Install (or clear) the process-default plane; returns the old one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = plane
    return previous


@contextmanager
def default_ops(plane: OpsPlane) -> Iterator[OpsPlane]:
    """Scoped :func:`install_default` (restores the previous plane)."""
    previous = install_default(plane)
    try:
        yield plane
    finally:
        install_default(previous)


def render_trace(spans: list[OpsSpan]) -> str:
    """ASCII tree of one trace's spans (the ``repro trace`` output)."""
    if not spans:
        return "(empty trace)"
    by_parent: dict[str | None, list[OpsSpan]] = {}
    ids = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    lines: list[str] = []

    def walk(parent: str | None, depth: int) -> None:
        for span in sorted(
            by_parent.get(parent, []), key=lambda s: (s.start_s, s.span_id)
        ):
            mark = "" if span.status == "ok" else "  [FAILED]"
            attrs = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
                if span.attrs
                else ""
            )
            lines.append(
                f"{'  ' * depth}{span.name:<24} {span.duration_ms:9.3f} ms"
                f"{attrs}{mark}"
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)
