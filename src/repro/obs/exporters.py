"""Machine-readable exporters for run artifacts.

Three formats:

* **JSONL trace** — one JSON object per traced event
  (``{"time": 12.0, "category": "ps_tx", "node": 3}``), streamable and
  greppable; round-trips through :func:`read_jsonl_trace`.
* **metrics JSON** — one document with the registry snapshot plus any
  probe series and span trees (schema ``repro.obs/1``).
* **Prometheus text** — the classic exposition format, so a scrape of a
  long-running service reusing this layer needs no translation.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.trace import TraceRecord, TraceRecorder

SCHEMA = "repro.obs/1"


def _canonical_codecs():
    # imported lazily: repro.conformance imports repro.obs at package
    # load, so a module-level import here would be circular
    from repro.conformance.canonical import from_jsonable, to_jsonable

    return to_jsonable, from_jsonable


# ----------------------------------------------------------------------
# JSONL trace
# ----------------------------------------------------------------------
def trace_to_jsonl(
    recorder: TraceRecorder,
    extra: dict[str, Any] | None = None,
    *,
    causal: bool = False,
) -> list[str]:
    """Render every retained record as one compact JSON line.

    Non-finite floats use the tagged encoding from
    :mod:`repro.conformance.canonical` (``"__nan__"``/``"__inf__"``/
    ``"__-inf__"``) so every emitted line is strict JSON and
    :func:`read_jsonl_trace` restores the original values.  With
    ``causal=True`` each line additionally carries a per-device Lamport
    clock (``"lc"``) assigned by :mod:`repro.obs.causal`.
    """
    to_jsonable, _ = _canonical_codecs()
    records = recorder.records()
    if causal:
        from repro.obs.causal import annotate_lamport

        records = annotate_lamport(records)
    lines = []
    for rec in records:
        doc: dict[str, Any] = {"time": rec.time, "category": rec.category}
        if extra:
            doc.update(extra)
        doc.update(rec.data)
        try:
            doc = to_jsonable(doc)
        except TypeError:
            # tolerate exotic payload types the canonical codec rejects
            doc = json.loads(json.dumps(doc, sort_keys=True, default=str))
        lines.append(json.dumps(doc, sort_keys=True))
    return lines

def write_jsonl_trace(
    recorder: TraceRecorder,
    path: str | pathlib.Path,
    extra: dict[str, Any] | None = None,
    append: bool = False,
    *,
    causal: bool = False,
) -> int:
    """Write the trace to ``path``; returns the number of lines written."""
    lines = trace_to_jsonl(recorder, extra, causal=causal)
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("a" if append else "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def read_jsonl_trace(path: str | pathlib.Path) -> list[TraceRecord]:
    """Parse a JSONL trace back into :class:`TraceRecord` objects."""
    _, from_jsonable = _canonical_codecs()
    records = []
    for line in pathlib.Path(path).read_text().splitlines():
        if not line.strip():
            continue
        doc = from_jsonable(json.loads(line))
        time = doc.pop("time")
        category = doc.pop("category")
        records.append(TraceRecord(time, category, doc))
    return records


# ----------------------------------------------------------------------
# metrics JSON
# ----------------------------------------------------------------------
def metrics_document(
    source: Any, extra: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Build the metrics JSON document from a registry or an
    :class:`~repro.obs.Observability` bundle (duck-typed on ``.metrics``)."""
    doc: dict[str, Any] = {"schema": SCHEMA}
    if extra:
        doc.update(extra)
    if isinstance(source, MetricsRegistry):
        doc["metrics"] = source.snapshot()
    else:
        doc["metrics"] = source.metrics.snapshot()
        if getattr(source, "probes", None) is not None and len(source.probes):
            doc["probes"] = source.probes.to_dicts()
        spans = getattr(source, "spans", None)
        if spans is not None and spans.roots:
            doc["spans"] = spans.to_dicts()
        bus = getattr(source, "bus", None)
        if bus is not None:
            doc["telemetry"] = bus.stats()
            if bus.alerts:
                doc["alerts"] = [a.to_dict() for a in bus.alerts]
    return doc


def write_metrics_json(
    source: Any,
    path: str | pathlib.Path,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Write the metrics document to ``path`` and return it."""
    doc = metrics_document(source, extra)
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus exposition format: ``\\``, ``"``, ``\\n``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    """Exact sample-value text: integers bare, floats at full precision.

    ``%g`` keeps only 6 significant digits, which silently corrupts
    large aggregated counters (a merged fleet-wide message bill of
    19 948 123 would export as ``1.99481e+07``).  ``repr`` is the
    shortest exact round-trip for IEEE-754 doubles.
    """
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render every metric in the Prometheus text exposition format.

    Output is byte-stable: metric families in name order, samples in
    canonical label order (both already sorted by the registry), and
    values at full precision via :func:`_fmt_value` — so the exposition
    of a merged cross-process registry is identical no matter the order
    the per-worker snapshots were merged in.
    """
    out: list[str] = []
    for metric in registry:
        name = prefix + metric.name
        if metric.help:
            out.append(f"# HELP {name} {_escape_help(metric.help)}")
        out.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for s in metric.samples():
                out.append(
                    f"{name}{_fmt_labels(s['labels'])} {_fmt_value(s['value'])}"
                )
        elif isinstance(metric, Histogram):
            for s in metric.samples():
                base = dict(s["labels"])
                for le, count in s["buckets"]:
                    out.append(
                        f"{name}_bucket{_fmt_labels({**base, 'le': le})} "
                        f"{_fmt_value(count)}"
                    )
                out.append(
                    f"{name}_sum{_fmt_labels(base)} {_fmt_value(s['sum'])}"
                )
                out.append(
                    f"{name}_count{_fmt_labels(base)} {_fmt_value(s['count'])}"
                )
    return "\n".join(out) + ("\n" if out else "")
