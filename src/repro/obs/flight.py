"""Flight recorder: bounded post-mortem capture for the live service.

A crashed or degraded ``repro serve`` is useless to debug from averages;
the operator needs *what just happened*.  :class:`FlightRecorder` keeps
three bounded deterministic rings — recent requests, recent telemetry
events, recent alerts — with explicit drop counters (never silent), and
dumps a self-contained post-mortem **bundle** when something goes wrong:

* an analyzer alert (SLO burn, stall, collision storm — the recorder is
  an ordinary bus subscriber, so any ``bus.alert`` arms it),
* a 5xx response, or
* an :class:`~repro.faults.invariants.InvariantViolation` escaping a
  world step.

Bundles are one JSON document (schema ``repro.obs.flight/1``) plus a
PR 5-style single-file HTML rendering — inline CSS, no external assets —
written under ``out_dir`` and bounded by ``max_bundles``.  ``repro
flight dump`` captures one on demand from a running service's
``GET /ops/flight``.

The recorder lives on the ops plane (:mod:`repro.obs.ops`): it observes
wall-clock facts and never feeds anything back, so service responses
stay byte-identical with it on or off.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import deque
from typing import Any

FLIGHT_SCHEMA = "repro.obs.flight/1"

#: Default ring size shared by the request/event/alert rings.
DEFAULT_FLIGHT_CAPACITY = 256

#: Bundles retained on disk before the oldest is deleted.
DEFAULT_MAX_BUNDLES = 8


class FlightRecorder:
    """Three bounded rings and the dump-on-trouble machinery."""

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        out_dir: str | pathlib.Path | None = None,
        max_bundles: int = DEFAULT_MAX_BUNDLES,
        clock=time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.out_dir = pathlib.Path(out_dir) if out_dir is not None else None
        self.max_bundles = int(max_bundles)
        self.clock = clock
        #: raw request records in the ops-plane tuple layout
        #: ``(endpoint, method, status, elapsed_s, trace_id, path,
        #: start_s)``; rendered to dicts only at bundle time so the
        #: per-request feed stays allocation-light.
        self.requests: deque[tuple] = deque(maxlen=self.capacity)
        self.events: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self.alerts: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        #: ring -> evictions; the drop ledger (bounded is never silent)
        self.dropped: dict[str, int] = {"requests": 0, "events": 0, "alerts": 0}
        self.violations: list[dict[str, Any]] = []
        self.dumps: list[str] = []  # bundle paths written, oldest first
        self._pending: str | None = None
        self._dump_seq = 0
        self.request_log: Any | None = None  # optional bounded RequestLog

    # ------------------------------------------------------------------
    # ring feeds (bus subscriber contract + explicit request notes)
    # ------------------------------------------------------------------
    def _append(self, ring: deque, name: str, item: dict[str, Any]) -> None:
        if len(ring) == self.capacity:
            self.dropped[name] += 1
        ring.append(item)

    def on_event(self, event: Any) -> None:
        self._append(
            self.events,
            "events",
            {
                "seq": event.seq,
                "time_ms": event.time_ms,
                "topic": event.topic,
                "values": dict(event.values),
                "labels": dict(event.labels),
            },
        )

    def on_alert(self, alert: Any) -> None:
        to_dict = getattr(alert, "to_dict", None)
        doc = to_dict() if callable(to_dict) else {"alert": str(alert)}
        self._append(self.alerts, "alerts", doc)
        analyzer = doc.get("analyzer", "unknown")
        self.arm(f"alert:{analyzer}")

    def note_request(
        self,
        *,
        method: str,
        endpoint: str,
        path: str,
        status: int,
        elapsed_ms: float,
        trace_id: str | None = None,
    ) -> None:
        """Record one served request; a 5xx arms an automatic dump."""
        self.ingest_requests(
            [
                (
                    endpoint,
                    method,
                    status,
                    elapsed_ms / 1000.0,
                    trace_id,
                    path,
                    self.clock(),
                )
            ]
        )
        if status >= 500:
            self.arm(f"5xx:{endpoint}")

    def ingest_requests(self, records: list[tuple]) -> None:
        """Batched raw ring feed (ops-plane request-record tuples).

        Deliberately does **not** inspect statuses — arming is the
        caller's job (:meth:`note_request` and ``OpsPlane.flush`` both
        do it), so this stays an O(1)-per-record ``extend`` with the
        drop ledger kept by arithmetic instead of a per-item check.
        """
        ring = self.requests
        overflow = len(ring) + len(records) - self.capacity
        if overflow > 0:
            # len(ring) <= capacity always, so overflow <= len(records)
            self.dropped["requests"] += overflow
        ring.extend(records)

    def note_invariant(self, exc: BaseException) -> None:
        """Record an invariant violation and arm a dump."""
        self.violations.append(
            {"wall_s": self.clock(), "error": f"{type(exc).__name__}: {exc}"}
        )
        self.arm(f"invariant:{type(exc).__name__}")

    def arm(self, reason: str) -> None:
        """Mark that the next :meth:`maybe_dump` should write a bundle."""
        if self._pending is None:
            self._pending = reason

    # ------------------------------------------------------------------
    # bundles
    # ------------------------------------------------------------------
    def bundle(self, reason: str = "manual") -> dict[str, Any]:
        """The self-contained post-mortem document."""
        doc: dict[str, Any] = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "captured_wall_s": self.clock(),
            "capacity": self.capacity,
            "dropped": dict(self.dropped),
            "requests": [_request_doc(rec) for rec in self.requests],
            "events": list(self.events),
            "alerts": list(self.alerts),
            "violations": list(self.violations),
        }
        if self.request_log is not None and self.request_log.entries:
            doc["request_log_jsonl"] = self.request_log.to_jsonl()
        return doc

    def dump(
        self,
        reason: str = "manual",
        out_dir: str | pathlib.Path | None = None,
    ) -> tuple[pathlib.Path, pathlib.Path]:
        """Write ``flight_NNNN.json`` + ``.html``; returns both paths."""
        directory = pathlib.Path(out_dir) if out_dir is not None else self.out_dir
        if directory is None:
            raise ValueError("flight recorder has no out_dir configured")
        directory.mkdir(parents=True, exist_ok=True)
        doc = self.bundle(reason)
        self._dump_seq += 1
        stem = f"flight_{self._dump_seq:04d}"
        json_path = directory / f"{stem}.json"
        html_path = directory / f"{stem}.html"
        json_path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        html_path.write_text(render_flight_html(doc), encoding="utf-8")
        self.dumps.extend([str(json_path), str(html_path)])
        # bound the on-disk bundle set (a flapping alert must not fill
        # the disk any more than a ring may grow without limit)
        while len(self.dumps) > 2 * self.max_bundles:
            stale = self.dumps.pop(0)
            pathlib.Path(stale).unlink(missing_ok=True)
        return json_path, html_path

    def maybe_dump(self) -> tuple[pathlib.Path, pathlib.Path] | None:
        """Dump iff armed and an ``out_dir`` is configured; disarms."""
        if self._pending is None:
            return None
        reason, self._pending = self._pending, None
        if self.out_dir is None:
            return None
        return self.dump(reason)


def _request_doc(rec: tuple) -> dict[str, Any]:
    """One ring tuple rendered to the bundle's JSON request document."""
    # rec[4] is a TraceContext when fed by the ops plane's batched path,
    # or a plain trace-id string (or None) via note_request
    trace = rec[4]
    if trace is not None and not isinstance(trace, str):
        trace = trace.trace_id
    return {
        "endpoint": rec[0],
        "method": rec[1],
        "status": rec[2],
        "elapsed_ms": round(rec[3] * 1000.0, 3),
        "trace_id": trace,
        "path": rec[5],
        "stamp_s": rec[6],
    }


# ----------------------------------------------------------------------
# HTML rendering (PR 5 report idiom: one file, inline CSS, no assets)
# ----------------------------------------------------------------------
def render_flight_html(doc: dict[str, Any]) -> str:
    from repro.obs.report import _CSS, _esc, _fmt

    def table(headers: list[str], rows: list[list[Any]]) -> str:
        if not rows:
            return "<p>none recorded</p>"
        head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
        body = "".join(
            "<tr>" + "".join(f"<td>{_esc(_fmt(c))}</td>" for c in row) + "</tr>"
            for row in rows
        )
        return f"<table><tr>{head}</tr>{body}</table>"

    requests = doc.get("requests", [])
    events = doc.get("events", [])
    alerts = doc.get("alerts", [])
    violations = doc.get("violations", [])
    dropped = doc.get("dropped", {})
    sections = [
        "<h1>flight recorder bundle</h1>",
        "<p>"
        f"reason <b>{_esc(doc.get('reason', '?'))}</b> — "
        f"{len(requests)} requests, {len(events)} events, "
        f"{len(alerts)} alerts, {len(violations)} invariant violations; "
        "dropped "
        + ", ".join(f"{k}={v}" for k, v in sorted(dropped.items()))
        + "</p>",
        "<h2>alerts</h2>",
        table(
            ["time_ms", "analyzer", "severity", "message"],
            [
                [a.get("time_ms"), a.get("analyzer"), a.get("severity"),
                 a.get("message")]
                for a in alerts
            ],
        ),
        "<h2>invariant violations</h2>",
        table(
            ["wall_s", "error"],
            [[v.get("wall_s"), v.get("error")] for v in violations],
        ),
        "<h2>recent requests</h2>",
        table(
            ["method", "path", "status", "elapsed_ms", "trace"],
            [
                [r.get("method"), r.get("path"), r.get("status"),
                 r.get("elapsed_ms"), r.get("trace_id") or ""]
                for r in requests
            ],
        ),
        "<h2>recent telemetry</h2>",
        table(
            ["seq", "time_ms", "topic", "values"],
            [
                [e.get("seq"), e.get("time_ms"), e.get("topic"),
                 json.dumps(e.get("values", {}), sort_keys=True)]
                for e in events
            ],
        ),
    ]
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>flight bundle</title><style>{_CSS}</style></head>"
        "<body>" + "".join(sections) + "</body></html>\n"
    )


def load_bundle(path: str | pathlib.Path) -> dict[str, Any]:
    """Read one bundle JSON back, validating the schema tag."""
    doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if doc.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(
            f"{path}: not a flight bundle (schema={doc.get('schema')!r})"
        )
    return doc
