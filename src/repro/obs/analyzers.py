"""Online telemetry analyzers: convergence health while the run happens.

Each analyzer is a :class:`~repro.obs.stream.TelemetryBus` subscriber
maintaining O(1) state per event.  Findings surface two ways:

* **gauges** in the metrics registry updated in place (Welford mean/std
  of sync spread, fragment merge rate), so snapshots taken mid-run show
  the current estimate;
* structured :class:`Alert` records raised through ``bus.alert(...)``
  when something looks pathological — a stalled convergence signal, a
  RACH collision storm.  Alerts land in ``bus.alerts`` (for the HTML
  run report) and in the ``alerts_total`` counter (for exports).

Analyzers are pure observers: they never touch protocol state and never
draw randomness, so attaching them cannot change a run's outcome.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.stream import TelemetryBus, TelemetryEvent


@dataclass(frozen=True)
class Alert:
    """One structured finding from an online analyzer."""

    time_ms: float
    analyzer: str
    severity: str  # "warning" | "critical"
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "time_ms": self.time_ms,
            "analyzer": self.analyzer,
            "severity": self.severity,
            "message": self.message,
            "context": dict(self.context),
        }


class Analyzer:
    """Base subscriber: topic dispatch plus alert plumbing."""

    #: analyzer name used in alerts and metric labels
    name = "analyzer"
    #: topics this analyzer consumes (empty = all)
    topics: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.bus: TelemetryBus | None = None
        self.alerts: list[Alert] = []

    def bind(self, bus: TelemetryBus) -> None:
        self.bus = bus

    def on_event(self, event: TelemetryEvent) -> None:
        if self.topics and event.topic not in self.topics:
            return
        self.observe(event)

    def observe(self, event: TelemetryEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def fire(
        self, time_ms: float, severity: str, message: str, **context: Any
    ) -> Alert:
        alert = Alert(
            time_ms=float(time_ms),
            analyzer=self.name,
            severity=severity,
            message=message,
            context=context,
        )
        self.alerts.append(alert)
        if self.bus is not None:
            self.bus.alert(alert)
        return alert


class WelfordSyncSpread(Analyzer):
    """Online mean/variance of the sync spread (Welford's algorithm).

    Consumes ``sync`` samples' ``spread_ms`` and keeps numerically
    stable running moments without retaining the series.  Exposed as
    ``sync_spread_mean_ms`` / ``sync_spread_std_ms`` gauges and via
    :attr:`mean` / :attr:`std`.
    """

    name = "welford_sync_spread"
    topics = ("sync",)

    def __init__(self) -> None:
        super().__init__()
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.last = 0.0

    def observe(self, event: TelemetryEvent) -> None:
        spread = event.values.get("spread_ms")
        if spread is None:
            return
        self.last = spread
        self.count += 1
        delta = spread - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (spread - self.mean)
        if self.bus is not None and self.bus.metrics is not None:
            labels = event.labels
            self.bus.metrics.gauge(
                "sync_spread_mean_ms",
                help="running mean of observed sync spread",
                unit="ms",
            ).set(self.mean, **labels)
            self.bus.metrics.gauge(
                "sync_spread_std_ms",
                help="running std-dev of observed sync spread",
                unit="ms",
            ).set(self.std, **labels)

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return self.variance**0.5


class FragmentMergeRate(Analyzer):
    """Fragment-count decay rate across Borůvka phases.

    Consumes ``fragments`` samples (``count`` per phase) and tracks the
    merge rate — fragments absorbed per millisecond of simulated time —
    as the ``fragment_merge_rate`` gauge.
    """

    name = "fragment_merge_rate"
    topics = ("fragments",)

    def __init__(self) -> None:
        super().__init__()
        self.last_count: float | None = None
        self.last_time: float | None = None
        self.rate = 0.0

    def observe(self, event: TelemetryEvent) -> None:
        count = event.values.get("count")
        if count is None:
            return
        if self.last_count is not None and self.last_time is not None:
            dt = event.time_ms - self.last_time
            if dt > 0:
                self.rate = max(0.0, self.last_count - count) / dt
                if self.bus is not None and self.bus.metrics is not None:
                    self.bus.metrics.gauge(
                        "fragment_merge_rate",
                        help="fragments absorbed per ms of simulated time",
                        unit="fragments/ms",
                    ).set(self.rate, **event.labels)
        self.last_count = count
        self.last_time = event.time_ms


class StallDetector(Analyzer):
    """Fire when a watched signal stops making progress for K samples.

    ``direction="down"`` expects the value to keep decreasing (sync
    spread, missing beacon pairs, fragment count); ``"up"`` expects
    growth.  A sample counts as progress when it improves on the best
    value seen so far by more than ``min_delta``.  After ``patience``
    consecutive samples without progress a single ``critical`` alert
    fires; the detector re-arms only after progress resumes, so one
    stall episode yields one alert.
    """

    name = "stall"

    def __init__(
        self,
        topic: str,
        key: str,
        *,
        patience: int = 8,
        min_delta: float = 0.0,
        direction: str = "down",
        done_value: float | None = None,
    ) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if direction not in ("down", "up"):
            raise ValueError("direction must be 'down' or 'up'")
        super().__init__()
        self.topics = (topic,)
        self.topic = topic
        self.key = key
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.direction = direction
        self.done_value = done_value
        self.best: float | None = None
        self.stalled_for = 0
        self._armed = True

    def observe(self, event: TelemetryEvent) -> None:
        value = event.values.get(self.key)
        if value is None:
            return
        # a signal that reached its terminal value cannot stall
        if self.done_value is not None and value <= self.done_value:
            self.best = value
            self.stalled_for = 0
            self._armed = True
            return
        if self.best is None:
            self.best = value
            return
        if self.direction == "down":
            improved = value < self.best - self.min_delta
        else:
            improved = value > self.best + self.min_delta
        if improved:
            self.best = value
            self.stalled_for = 0
            self._armed = True
            return
        self.stalled_for += 1
        if self._armed and self.stalled_for >= self.patience:
            self._armed = False
            self.fire(
                event.time_ms,
                "critical",
                f"no progress on {self.topic}/{self.key} for "
                f"{self.stalled_for} samples",
                topic=self.topic,
                key=self.key,
                best=self.best,
                current=value,
                samples=self.stalled_for,
            )


class CollisionStormDetector(Analyzer):
    """RACH collision-storm detection over a sliding period window.

    Consumes ``rach`` samples (``collisions`` and ``transmitters`` per
    beacon period).  When the collision rate — colliding transmissions
    over total transmissions — inside the last ``window`` periods
    exceeds ``threshold`` (with a minimum activity floor), a single
    ``warning`` alert fires per storm episode.
    """

    name = "collision_storm"
    topics = ("rach",)

    def __init__(
        self,
        *,
        window: int = 8,
        threshold: float = 0.3,
        min_transmitters: int = 8,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        super().__init__()
        self.window = int(window)
        self.threshold = float(threshold)
        self.min_transmitters = int(min_transmitters)
        self._samples: list[tuple[float, float]] = []  # (collisions, tx)
        self._armed = True

    def observe(self, event: TelemetryEvent) -> None:
        collisions = event.values.get("collisions", 0.0)
        transmitters = event.values.get("transmitters", 0.0)
        self._samples.append((collisions, transmitters))
        if len(self._samples) > self.window:
            self._samples.pop(0)
        total_tx = sum(tx for _, tx in self._samples)
        total_col = sum(c for c, _ in self._samples)
        if total_tx < self.min_transmitters:
            return
        rate = total_col / total_tx
        if rate > self.threshold:
            if self._armed:
                self._armed = False
                self.fire(
                    event.time_ms,
                    "warning",
                    f"RACH collision storm: {rate:.0%} of transmissions "
                    f"collided over the last {len(self._samples)} periods",
                    rate=rate,
                    collisions=total_col,
                    transmitters=total_tx,
                    window=len(self._samples),
                )
        else:
            self._armed = True


def _print_stderr(line: str) -> None:
    """Default :class:`LiveProgress` sink: the *diagnostic* stream.

    Progress lines must never ride stdout — piping ``repro simulate
    --live`` into a file or diff would otherwise interleave them with
    the canonical result output.  ``sys.stderr`` is resolved at call
    time so test harnesses that swap the stream capture every line.
    """
    print(line, file=sys.stderr)


class LiveProgress:
    """``--live`` subscriber: one-line progress prints at a bounded rate.

    Not an analyzer (no alerts of its own); it renders ``sync``,
    ``fragments`` and ``beacon`` samples plus any alert raised by the
    real analyzers.  ``min_interval_ms`` throttles output by simulated
    time so large runs do not flood the terminal.  Output goes to
    stderr by default, keeping stdout byte-identical with and without
    ``--live``.
    """

    def __init__(
        self,
        print_fn: Callable[[str], None] | None = None,
        *,
        min_interval_ms: float = 0.0,
    ) -> None:
        self._print = print_fn if print_fn is not None else _print_stderr
        self.min_interval_ms = float(min_interval_ms)
        self._last_print_ms: dict[str, float] = {}

    def on_event(self, event: TelemetryEvent) -> None:
        line = self._format(event)
        if line is None:
            return
        last = self._last_print_ms.get(event.topic)
        if last is not None and event.time_ms - last < self.min_interval_ms:
            return
        self._last_print_ms[event.topic] = event.time_ms
        self._print(line)

    def on_alert(self, alert: Alert) -> None:
        self._print(
            f"[live] t={alert.time_ms:9.1f}ms ALERT {alert.severity} "
            f"({alert.analyzer}) {alert.message}"
        )

    def _format(self, event: TelemetryEvent) -> str | None:
        v = event.values
        if event.topic == "sync":
            return (
                f"[live] t={event.time_ms:9.1f}ms sync "
                f"spread={v.get('spread_ms', 0.0):8.3f}ms "
                f"r={v.get('order_parameter', 0.0):.3f} "
                f"groups={int(v.get('sync_groups', 0))}"
            )
        if event.topic == "fragments":
            return (
                f"[live] t={event.time_ms:9.1f}ms fragments "
                f"count={int(v.get('count', 0))} "
                f"largest={int(v.get('largest', 0))} "
                f"phase={int(v.get('phase', 0))}"
            )
        if event.topic == "beacon":
            return (
                f"[live] t={event.time_ms:9.1f}ms beacon "
                f"period={int(v.get('period', 0))} "
                f"missing_pairs={int(v.get('missing_pairs', 0))}"
            )
        return None


def default_analyzers() -> list[Analyzer]:
    """The standard analyzer set attached by ``Observability(stream=True)``.

    Stall patience values are sized against the default probe cadence
    (one ``sync`` sample per simulated second) and beacon periods: a
    healthy run converges well before 12 idle sync samples or 20 idle
    discovery periods accumulate.
    """
    return [
        WelfordSyncSpread(),
        FragmentMergeRate(),
        StallDetector(
            "sync", "spread_ms", patience=12, min_delta=1e-6, done_value=1e-3
        ),
        StallDetector(
            "beacon", "missing_pairs", patience=20, min_delta=0.0, done_value=0.0
        ),
        CollisionStormDetector(),
    ]
