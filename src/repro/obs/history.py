"""Bench-history trend tracking: deltas, budget headroom, sparklines.

Every benchmark already writes a machine-readable ``BENCH_<id>.json``
artifact (schema ``repro.bench/1``) and CI compares the newest one
against a committed baseline.  That is a two-point view; this module
keeps the whole series:

* a **history file** (JSONL, schema ``repro.bench.history/1``) holds one
  entry per recorded artifact — bench name, sequence number, label,
  wall time, per-row timings and budgets — appended by ``repro trend
  --record`` or ``scripts/check_bench_regression.py --append-history``;
* :func:`bench_series` assembles per-benchmark series from the three
  sources in play (committed baselines, the history file, the freshest
  ``results/`` artifacts);
* :func:`trend_rows` computes per-benchmark deltas (vs the previous
  point and vs the first) and **budget headroom** (``limit - value``,
  the distance to a BUDGET EXCEEDED failure) over time;
* :func:`render_trend_section` renders the trend table with an inline
  SVG sparkline per benchmark — embeddable in the PR 5 HTML run report
  — and :func:`write_trend_report` wraps it into a standalone page for
  ``repro trend``.

Entries are ordered by ``seq`` (baseline 0, recorded history next,
current artifacts last), so the sparkline x-axis is the recording order,
never a wall-clock timestamp — reproducible from the committed files
alone.
"""

from __future__ import annotations

import html
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable

HISTORY_SCHEMA = "repro.bench.history/1"
BENCH_SCHEMA = "repro.bench/1"

#: House chart hue (matches the run-report CSS) and status inks.
_LINE = "#2a6edb"
_GOOD = "#188554"
_BAD = "#b3261e"
_MUTED = "#6b7a8c"

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 960px; color: #1c2733;
       background: #fcfdfe; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #2a6edb;
     padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; color: #2a6edb; }
table { border-collapse: collapse; margin: .5rem 0; font-size: .85rem; }
th, td { border: 1px solid #d4dde8; padding: .25rem .6rem;
         text-align: right; }
th { background: #eef3fa; }
td.l, th.l { text-align: left; }
.up { color: #b3261e; font-weight: 600; }
.down { color: #188554; font-weight: 600; }
.muted { color: #6b7a8c; font-size: .8rem; }
svg { vertical-align: middle; }
"""


# ----------------------------------------------------------------------
# history points
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HistoryPoint:
    """One recorded benchmark artifact in a per-bench series."""

    bench: str
    seq: int
    label: str
    wall_time_s: float | None
    rows: list[dict[str, Any]] = field(default_factory=list)
    budgets: list[dict[str, Any]] = field(default_factory=list)

    def headroom(self) -> dict[str, float]:
        """Per-budget distance to failure: ``limit - value``."""
        out: dict[str, float] = {}
        for b in self.budgets:
            try:
                out[str(b["name"])] = float(b["limit"]) - float(b["value"])
            except (KeyError, TypeError, ValueError):
                continue
        return out


def point_from_artifact(
    artifact: dict[str, Any], *, seq: int, label: str
) -> HistoryPoint:
    """Build a history point from a ``repro.bench/1`` artifact dict."""
    if artifact.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"expected schema {BENCH_SCHEMA!r}, got {artifact.get('schema')!r}"
        )
    metrics = artifact.get("metrics", {}) or {}
    wall = artifact.get("wall_time_s")
    return HistoryPoint(
        bench=str(artifact.get("bench", "?")),
        seq=int(seq),
        label=str(label),
        wall_time_s=None if wall is None else float(wall),
        rows=list(metrics.get("rows", [])),
        budgets=list(metrics.get("budgets", [])),
    )


def _point_to_entry(point: HistoryPoint) -> dict[str, Any]:
    return {
        "schema": HISTORY_SCHEMA,
        "bench": point.bench,
        "seq": point.seq,
        "label": point.label,
        "wall_time_s": point.wall_time_s,
        "rows": point.rows,
        "budgets": point.budgets,
    }


def load_history(path: str | pathlib.Path) -> list[HistoryPoint]:
    """Parse a history JSONL file; a missing file is an empty history."""
    p = pathlib.Path(path)
    if not p.is_file():
        return []
    points = []
    for lineno, line in enumerate(p.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        entry = json.loads(line)
        if entry.get("schema") != HISTORY_SCHEMA:
            raise ValueError(
                f"{path}:{lineno}: expected schema {HISTORY_SCHEMA!r}, "
                f"got {entry.get('schema')!r}"
            )
        points.append(
            HistoryPoint(
                bench=str(entry["bench"]),
                seq=int(entry["seq"]),
                label=str(entry.get("label", "")),
                wall_time_s=(
                    None
                    if entry.get("wall_time_s") is None
                    else float(entry["wall_time_s"])
                ),
                rows=list(entry.get("rows", [])),
                budgets=list(entry.get("budgets", [])),
            )
        )
    return points


def append_history(
    path: str | pathlib.Path, artifact: dict[str, Any], label: str = ""
) -> HistoryPoint:
    """Append one artifact to the history file; returns the new point.

    The sequence number is one past the largest recorded for the same
    bench (starting at 1 — seq 0 is reserved for committed baselines).
    """
    existing = load_history(path)
    bench = str(artifact.get("bench", "?"))
    seq = 1 + max(
        (pt.seq for pt in existing if pt.bench == bench), default=0
    )
    point = point_from_artifact(artifact, seq=seq, label=label or f"run-{seq}")
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("a") as fh:
        fh.write(json.dumps(_point_to_entry(point), sort_keys=True) + "\n")
    return point


def collect_artifacts(
    directory: str | pathlib.Path, *, seq: int, label: str
) -> list[HistoryPoint]:
    """Load every ``BENCH_*.json`` in ``directory`` as one history point.

    Files that are not ``repro.bench/1`` artifacts are skipped silently
    (the results directory mixes artifacts with rendered text output).
    """
    points = []
    d = pathlib.Path(directory)
    if not d.is_dir():
        return []
    for path in sorted(d.glob("BENCH_*.json")):
        try:
            artifact = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if artifact.get("schema") != BENCH_SCHEMA:
            continue
        points.append(point_from_artifact(artifact, seq=seq, label=label))
    return points


def bench_series(
    *,
    baseline_dir: str | pathlib.Path | None = None,
    history_path: str | pathlib.Path | None = None,
    results_dir: str | pathlib.Path | None = None,
    extra_points: Iterable[HistoryPoint] = (),
) -> dict[str, list[HistoryPoint]]:
    """Assemble per-benchmark series from every available source.

    Order within a series: committed baseline (seq 0), recorded history
    (seq 1..k), then the freshest ``results_dir`` artifacts (seq k+1).
    A bench appearing in only one source still gets a (short) series.
    """
    points: list[HistoryPoint] = []
    if baseline_dir is not None:
        points += collect_artifacts(baseline_dir, seq=0, label="baseline")
    recorded = load_history(history_path) if history_path is not None else []
    points += recorded
    if results_dir is not None:
        next_seq: dict[str, int] = {}
        for pt in points:
            next_seq[pt.bench] = max(next_seq.get(pt.bench, 0), pt.seq)
        for pt in collect_artifacts(results_dir, seq=0, label="current"):
            points.append(
                HistoryPoint(
                    bench=pt.bench,
                    seq=next_seq.get(pt.bench, 0) + 1,
                    label="current",
                    wall_time_s=pt.wall_time_s,
                    rows=pt.rows,
                    budgets=pt.budgets,
                )
            )
    points += list(extra_points)
    series: dict[str, list[HistoryPoint]] = {}
    for pt in points:
        series.setdefault(pt.bench, []).append(pt)
    for bench in series:
        series[bench].sort(key=lambda p: (p.seq, p.label))
    return series


# ----------------------------------------------------------------------
# trend computation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrendRow:
    """Per-benchmark trend summary over its history series."""

    bench: str
    points: int
    walls: list[float]
    latest_wall_s: float | None
    delta_prev: float | None  # fractional change vs previous point
    delta_first: float | None  # fractional change vs first point
    #: tightest budget headroom at the latest point (None: no budgets)
    headroom: float | None
    headroom_name: str | None
    headroom_series: list[float] = field(default_factory=list)


def trend_rows(series: dict[str, list[HistoryPoint]]) -> list[TrendRow]:
    """Deltas and budget headroom per benchmark, name-sorted."""
    rows = []
    for bench in sorted(series):
        pts = series[bench]
        walls = [p.wall_time_s for p in pts if p.wall_time_s is not None]
        latest = walls[-1] if walls else None
        delta_prev = delta_first = None
        if len(walls) >= 2 and walls[-2] > 0:
            delta_prev = walls[-1] / walls[-2] - 1.0
        if len(walls) >= 2 and walls[0] > 0:
            delta_first = walls[-1] / walls[0] - 1.0
        headroom = headroom_name = None
        headroom_series: list[float] = []
        budgeted = [p for p in pts if p.headroom()]
        if budgeted:
            last = budgeted[-1].headroom()
            headroom_name, headroom = min(last.items(), key=lambda kv: kv[1])
            headroom_series = [
                min(p.headroom().values()) for p in budgeted
            ]
        rows.append(
            TrendRow(
                bench=bench,
                points=len(pts),
                walls=walls,
                latest_wall_s=latest,
                delta_prev=delta_prev,
                delta_first=delta_first,
                headroom=headroom,
                headroom_name=headroom_name,
                headroom_series=headroom_series,
            )
        )
    return rows


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def sparkline_svg(
    values: list[float],
    *,
    width: int = 140,
    height: int = 28,
    color: str = _LINE,
) -> str:
    """A single-series inline-SVG sparkline (axis-free, dot on latest)."""
    pts = [float(v) for v in values if v == v]  # drop NaNs
    if len(pts) < 2:
        return f'<span class="muted">{len(pts)} point(s)</span>'
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    pad = 3.0
    step = (width - 2 * pad) / (len(pts) - 1)

    def sx(i: int) -> float:
        return pad + i * step

    def sy(v: float) -> float:
        return pad + (1.0 - (v - lo) / span) * (height - 2 * pad)

    coords = " ".join(f"{sx(i):.1f},{sy(v):.1f}" for i, v in enumerate(pts))
    cx, cy = sx(len(pts) - 1), sy(pts[-1])
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="trend of '
        f'{len(pts)} points">'
        f'<polyline points="{coords}" fill="none" stroke="{color}" '
        f'stroke-width="2" stroke-linejoin="round"/>'
        f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="2.5" fill="{color}"/>'
        "</svg>"
    )


def _fmt_delta(delta: float | None) -> str:
    if delta is None:
        return '<span class="muted">–</span>'
    cls = "up" if delta > 0 else "down" if delta < 0 else "muted"
    return f'<span class="{cls}">{delta:+.1%}</span>'


def render_trend_section(series: dict[str, list[HistoryPoint]]) -> str:
    """The trend table as an HTML fragment (embeddable in the run report)."""
    rows = trend_rows(series)
    if not rows:
        return (
            "<h2>Benchmark trends</h2>"
            '<p class="muted">no benchmark history found</p>'
        )
    cells = [
        '<tr><th class="l">benchmark</th><th class="l">wall-time trend</th>'
        "<th>points</th><th>latest (s)</th><th>&Delta; prev</th>"
        "<th>&Delta; first</th><th class=l>budget headroom</th></tr>"
    ]
    for row in rows:
        if row.headroom is None:
            headroom = '<span class="muted">no budgets</span>'
        else:
            cls = "down" if row.headroom >= 0 else "up"
            headroom = (
                f'<span class="{cls}">{row.headroom:+.4f}</span> '
                f'<span class="muted">({html.escape(row.headroom_name)})</span>'
            )
            if len(row.headroom_series) >= 2:
                headroom += " " + sparkline_svg(
                    row.headroom_series, width=80, color=_GOOD
                )
        latest = (
            f"{row.latest_wall_s:.3f}"
            if row.latest_wall_s is not None
            else '<span class="muted">–</span>'
        )
        cells.append(
            f'<tr><td class="l">{html.escape(row.bench)}</td>'
            f'<td class="l">{sparkline_svg(row.walls)}</td>'
            f"<td>{row.points}</td><td>{latest}</td>"
            f"<td>{_fmt_delta(row.delta_prev)}</td>"
            f"<td>{_fmt_delta(row.delta_first)}</td>"
            f'<td class="l">{headroom}</td></tr>'
        )
    note = (
        '<p class="muted">wall times are machine-dependent; the trend is '
        "recording order (baseline &rarr; history &rarr; current), not "
        "wall-clock time. Budget headroom is limit &minus; value: "
        "negative means BUDGET EXCEEDED.</p>"
    )
    return "<h2>Benchmark trends</h2>" + "".join(
        ["<table>"] + cells + ["</table>", note]
    )


def render_trend_page(
    series: dict[str, list[HistoryPoint]],
    *,
    title: str = "repro benchmark trends",
) -> str:
    """A standalone self-contained HTML page around the trend section."""
    return (
        '<!DOCTYPE html><html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{html.escape(title)}</h1>"
        + render_trend_section(series)
        + "</body></html>\n"
    )


def write_trend_report(
    series: dict[str, list[HistoryPoint]],
    path: str | pathlib.Path,
    *,
    title: str = "repro benchmark trends",
) -> pathlib.Path:
    """Render and write the standalone trend page; returns the path."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_trend_page(series, title=title))
    return p
