"""Periodic protocol probes — sampled observables along a run.

A probe is a named time series of numeric observations taken at (at
least) a configured simulated-time interval: sync-error spread during a
pulse-coupled run, fragment sizes per Borůvka phase, neighbour-table fill
during discovery.  Two feeding styles:

* **pull** — :meth:`ProbeSet.register` a callable returning a value dict;
  :meth:`ProbeSet.maybe_sample` invokes every due probe.
* **push** — the protocol loop calls :meth:`ProbeSet.record` with values
  it already has in hand (the common case inside vectorized kernels).
  ``record`` honours the probe's interval, so a hot loop can call it
  every instant and still produce a bounded series.

Time is *simulated* milliseconds, so probe series are deterministic for
a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: Default spacing between samples of one probe (simulated ms).
DEFAULT_INTERVAL_MS = 1_000.0


@dataclass(frozen=True)
class ProbeSample:
    """One observation of one probe."""

    time_ms: float
    probe: str
    values: dict[str, float]

    def __getitem__(self, key: str) -> float:
        return self.values[key]


class ProbeSet:
    """Named probes sampled on a simulated-time schedule."""

    def __init__(self, interval_ms: float = DEFAULT_INTERVAL_MS) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.interval_ms = float(interval_ms)
        self.samples: list[ProbeSample] = []
        self._pull: dict[str, Callable[[], dict[str, float]]] = {}
        self._intervals: dict[str, float] = {}
        self._next_due: dict[str, float] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        fn: Callable[[], dict[str, float]] | None = None,
        interval_ms: float | None = None,
    ) -> None:
        """Declare a probe; ``fn`` makes it pull-sampleable."""
        if interval_ms is not None and interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if fn is not None:
            self._pull[name] = fn
        if interval_ms is not None:
            self._intervals[name] = float(interval_ms)

    def _interval(self, name: str) -> float:
        return self._intervals.get(name, self.interval_ms)

    def due(self, name: str, time_ms: float) -> bool:
        return time_ms >= self._next_due.get(name, -float("inf"))

    # ------------------------------------------------------------------
    def record(
        self, time_ms: float, probe: str, *, force: bool = False, **values: float
    ) -> bool:
        """Push one observation; dropped when the probe is not yet due.

        Returns True when the sample was kept.  ``force=True`` bypasses
        the interval (e.g. a final end-of-run sample).
        """
        if not force and not self.due(probe, time_ms):
            return False
        self.samples.append(
            ProbeSample(time_ms, probe, {k: float(v) for k, v in values.items()})
        )
        self._next_due[probe] = time_ms + self._interval(probe)
        return True

    def maybe_sample(self, time_ms: float) -> int:
        """Pull every registered-and-due probe; returns samples taken."""
        taken = 0
        for name, fn in self._pull.items():
            if self.due(name, time_ms):
                taken += int(self.record(time_ms, name, **fn()))
        return taken

    # ------------------------------------------------------------------
    def series(self, probe: str, key: str) -> list[tuple[float, float]]:
        """``(time_ms, value)`` pairs of one probe's named value."""
        return [
            (s.time_ms, s.values[key])
            for s in self.samples
            if s.probe == probe and key in s.values
        ]

    def probes(self) -> list[str]:
        return sorted({s.probe for s in self.samples})

    def __len__(self) -> int:
        return len(self.samples)

    def clear(self) -> None:
        self.samples.clear()
        self._next_due.clear()

    def to_dicts(self) -> list[dict[str, Any]]:
        return [
            {"time_ms": s.time_ms, "probe": s.probe, **s.values}
            for s in self.samples
        ]
