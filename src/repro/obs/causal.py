"""Lamport-clock tagging for trace events: causal order per device.

Wall-of-time JSONL traces interleave every device's events by simulated
timestamp, which hides causality: two ``ps_tx`` events at the same
instant may be unrelated, while a fragment merge *happens-after* every
pulse that built the fragments it joins.  This module assigns Lamport
clocks as **pure post-processing** over an already-captured event
stream — protocol code and the golden-trace capture format are
untouched, so conformance hashes stay byte-identical.

The causal model mirrors the paper's message structure:

* ``ps_tx`` / ``crash`` involve one device (``node``);
* ``merge`` is the H_Connect handshake between two fragments, so it
  involves both endpoints (``u``, ``v``) and synchronises their clocks;
* network-wide observations (``beacon_period``, engine snapshots) are
  emitted by the observer, not a device: they receive a clock one past
  every device seen so far but advance no device clock.

Clock rule (Lamport): an event touching devices *P* gets
``lc = 1 + max(clock[p] for p in P)`` and sets every participant's
clock to ``lc`` — per-device sequences are strictly increasing, and a
merge's clock exceeds every earlier event on either side.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.sim.trace import TraceRecord

#: data keys that identify participating devices, per category; a
#: category absent here falls back to scanning _DEVICE_KEYS.
PARTICIPANT_KEYS: dict[str, tuple[str, ...]] = {
    "ps_tx": ("node",),
    "crash": ("node",),
    "merge": ("u", "v"),
    "beacon_period": (),
}

_DEVICE_KEYS = ("node", "u", "v", "device", "sender", "receiver")


def participants(category: str, data: dict[str, Any]) -> tuple[int, ...]:
    """Device ids participating in one event (empty = network-wide)."""
    keys = PARTICIPANT_KEYS.get(category)
    if keys is None:
        keys = tuple(k for k in _DEVICE_KEYS if k in data)
    out = []
    for key in keys:
        value = data.get(key)
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        out.append(value)
    return tuple(out)


class LamportTagger:
    """Incremental Lamport-clock assignment over an event stream."""

    def __init__(self) -> None:
        self.clocks: dict[int, int] = {}
        self._max_clock = 0

    def tick(self, category: str, data: dict[str, Any]) -> int:
        """Assign and return the Lamport clock for one event."""
        parts = participants(category, data)
        if parts:
            lc = 1 + max(self.clocks.get(p, 0) for p in parts)
            for p in parts:
                self.clocks[p] = lc
            self._max_clock = max(self._max_clock, lc)
        else:
            # observer events order after everything seen so far but do
            # not advance any device clock
            lc = self._max_clock + 1
        return lc


def annotate_lamport(records: Iterable[TraceRecord]) -> list[TraceRecord]:
    """Return records with a Lamport clock added as ``data["lc"]``.

    Input order is the emit order (non-decreasing simulated time), which
    any valid Lamport assignment must respect.  The originals are not
    modified; the result preserves stream order.
    """
    tagger = LamportTagger()
    out = []
    for rec in records:
        lc = tagger.tick(rec.category, rec.data)
        out.append(
            TraceRecord(
                time=rec.time,
                category=rec.category,
                data={**rec.data, "lc": lc},
            )
        )
    return out


def causal_sort_key(record: TraceRecord) -> tuple[float, int]:
    """Sort key ordering annotated records by (time, Lamport clock)."""
    return (record.time, int(record.data.get("lc", 0)))


def verify_causal_order(records: Sequence[TraceRecord]) -> bool:
    """Check per-device Lamport clocks are strictly increasing.

    Useful as a test oracle: any correct assignment over a valid stream
    satisfies this; a violation means the stream (or the tagger) is
    broken.
    """
    last: dict[int, int] = {}
    for rec in records:
        lc = rec.data.get("lc")
        if lc is None:
            return False
        for p in participants(rec.category, rec.data):
            if lc <= last.get(p, 0):
                return False
            last[p] = lc
    return True


# ----------------------------------------------------------------------
# conformance integration: clocks for golden capture event lists
# ----------------------------------------------------------------------
def lamport_context(
    events: Sequence[Sequence[Any]], index: int
) -> dict[str, Any]:
    """Causal context for ``events[index]`` of a golden capture stream.

    ``events`` uses the golden capture shape ``[time, category, data]``.
    Returns the diverging event's Lamport clock and participants so a
    ``first_divergence`` report can say *where in causal order* the runs
    split, not just at which stream index.
    """
    tagger = LamportTagger()
    lc = 0
    for i, event in enumerate(events[: index + 1]):
        try:
            _, category, data = event
        except (TypeError, ValueError):
            continue
        if not isinstance(data, dict):
            continue
        lc = tagger.tick(category, data)
        if i == index:
            return {
                "lamport": lc,
                "participants": list(participants(category, data)),
            }
    return {"lamport": lc, "participants": []}
