"""Streaming telemetry bus: bounded ring buffer, deterministic sampling.

Post-hoc observability (metrics snapshots, span trees) tells you what a
run *did*; the bus tells you what it is *doing*.  Protocol code
publishes small numeric samples onto named **topics** (``sync``,
``beacon``, ``rach``, ``fragments``, ``instant``, ``engine``) and online
subscribers — the analyzers in :mod:`repro.obs.analyzers`, the
``--live`` progress printer — consume them as the run advances.

Three properties keep the bus safe on hot paths:

* **bounded**: retained events live in a ring of fixed capacity; when a
  publish would overflow, the oldest event is evicted and the eviction
  is *counted*, never silent (``telemetry_dropped_total`` with
  ``reason="evicted"``).
* **deterministically sampled**: per-topic admission policies decide
  which publishes become events.  :class:`EveryK` keeps every k-th
  round; :class:`ReservoirSample` keeps a uniform sample of a value
  stream using counter-hashed randomness (a pure function of the seed
  and the item ordinal — no RNG state, so repeated runs sample
  identically).  Sampled-out publishes are counted with
  ``reason="sampled"``.
* **observation-only**: publishing draws no randomness and mutates no
  protocol state, so enabling the bus cannot perturb a run — the
  conformance goldens are the proof.

The bus is attached to an :class:`~repro.obs.Observability` bundle as
``obs.bus`` (``None`` unless the bundle was created with
``stream=True``), so the existing ``obs=None`` zero-cost contract
extends unchanged: kernels guard every publish behind one ``is not
None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import MetricsRegistry

#: Default ring capacity (retained events across all topics).
DEFAULT_CAPACITY = 4096


def _mix64(x: int) -> int:
    """SplitMix64 finalizer — a stateless 64-bit mixing hash."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


@dataclass(frozen=True)
class TelemetryEvent:
    """One admitted sample on one topic."""

    seq: int
    time_ms: float
    topic: str
    values: dict[str, float]
    labels: dict[str, str] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.values[key]


class SamplingPolicy:
    """Admission rule for one topic; pure function of the publish ordinal."""

    def admit(self, ordinal: int) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class KeepAll(SamplingPolicy):
    """Admit every publish (the default policy)."""

    def admit(self, ordinal: int) -> bool:
        return True


class EveryK(SamplingPolicy):
    """Admit every ``k``-th publish (ordinals 0, k, 2k, ...).

    The workhorse policy for per-round topics: a kernel can publish every
    avalanche instant and the bus keeps a bounded, evenly spaced series.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)

    def admit(self, ordinal: int) -> bool:
        return ordinal % self.k == 0


class ReservoirSample:
    """Deterministic uniform reservoir over a value stream.

    Algorithm R with the usual RNG replaced by a counter hash: item
    ``i``'s replacement slot is ``_mix64(seed ^ i) % (i + 1)`` — a pure
    function of ``(seed, i)``, so two identical runs (any platform)
    retain byte-identical reservoirs.  Used for distribution-shaped
    telemetry (sync-spread samples, wave sizes) where the full stream is
    unbounded but a uniform sample is enough for percentiles.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.seed = int(seed) & 0xFFFFFFFFFFFFFFFF
        self.seen = 0
        self.values: list[float] = []

    def offer(self, value: float) -> bool:
        """Feed one value; returns True when it entered the reservoir."""
        i = self.seen
        self.seen += 1
        if i < self.capacity:
            self.values.append(float(value))
            return True
        j = _mix64(self.seed ^ i) % (i + 1)
        if j < self.capacity:
            self.values[j] = float(value)
            return True
        return False

    def sorted_values(self) -> list[float]:
        return sorted(self.values)

    def __len__(self) -> int:
        return len(self.values)


class TelemetryBus:
    """Bounded pub/sub bus for streaming run telemetry.

    Parameters
    ----------
    capacity:
        Ring size shared by all topics; evictions are counted, not
        silent.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        publishes/drops/alerts are mirrored into
        ``telemetry_events_total``, ``telemetry_dropped_total`` and
        ``alerts_total`` so run artifacts carry the accounting.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.metrics = metrics
        self.events: list[TelemetryEvent] = []
        self._start = 0  # ring head (events[:_start] were evicted)
        self._seq = 0
        self._topic_counts: dict[str, int] = {}
        self._policies: dict[str, SamplingPolicy] = {}
        self._default_policy: SamplingPolicy = KeepAll()
        self._reservoirs: dict[tuple[str, str], ReservoirSample] = {}
        self._subscribers: list[Any] = []
        self.alerts: list[Any] = []
        self.dropped: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_policy(self, topic: str, policy: SamplingPolicy) -> None:
        """Install an admission policy for one topic."""
        self._policies[topic] = policy

    def add_reservoir(
        self, topic: str, key: str, capacity: int = 256, seed: int = 0
    ) -> ReservoirSample:
        """Attach a deterministic reservoir to ``values[key]`` of ``topic``.

        Reservoirs are fed by *every* publish (before admission), so a
        heavily sampled topic still yields an unbiased distribution.
        """
        res = ReservoirSample(capacity, seed)
        self._reservoirs[(topic, key)] = res
        return res

    def reservoir(self, topic: str, key: str) -> ReservoirSample | None:
        return self._reservoirs.get((topic, key))

    def subscribe(self, subscriber: Any) -> None:
        """Register a subscriber: ``on_event(event)`` or a plain callable.

        Subscribers with a ``bind(bus)`` method are handed the bus so
        analyzers can raise alerts through :meth:`alert`.
        """
        bind = getattr(subscriber, "bind", None)
        if callable(bind):
            bind(self)
        self._subscribers.append(subscriber)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        topic: str,
        time_ms: float,
        labels: dict[str, str] | None = None,
        **values: float,
    ) -> TelemetryEvent | None:
        """Offer one sample; returns the admitted event or ``None``.

        Reservoirs attached to the topic are fed regardless of the
        admission outcome; a sampled-out or evicted publish increments
        ``telemetry_dropped_total`` with ``reason`` ``"sampled"`` /
        ``"evicted"``.
        """
        ordinal = self._topic_counts.get(topic, 0)
        self._topic_counts[topic] = ordinal + 1
        for (res_topic, key), res in self._reservoirs.items():
            if res_topic == topic and key in values:
                res.offer(values[key])
        policy = self._policies.get(topic, self._default_policy)
        if not policy.admit(ordinal):
            self._drop(topic, "sampled")
            return None
        event = TelemetryEvent(
            seq=self._seq,
            time_ms=float(time_ms),
            topic=topic,
            values={k: float(v) for k, v in values.items()},
            labels=dict(labels) if labels else {},
        )
        self._seq += 1
        if len(self.events) - self._start >= self.capacity:
            evicted = self.events[self._start]
            self._start += 1
            self._drop(evicted.topic, "evicted")
            # amortized compaction keeps the backing list bounded
            if self._start >= self.capacity:
                del self.events[: self._start]
                self._start = 0
        self.events.append(event)
        if self.metrics is not None:
            self.metrics.counter(
                "telemetry_events_total",
                help="telemetry samples admitted onto the bus",
                unit="events",
            ).inc(1, topic=topic)
        for sub in self._subscribers:
            handler = getattr(sub, "on_event", sub)
            handler(event)
        return event

    def _drop(self, topic: str, reason: str) -> None:
        key = (topic, reason)
        self.dropped[key] = self.dropped.get(key, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(
                "telemetry_dropped_total",
                help="telemetry samples dropped (sampled out or evicted)",
                unit="events",
            ).inc(1, topic=topic, reason=reason)

    # ------------------------------------------------------------------
    # alerts (raised by analyzer subscribers)
    # ------------------------------------------------------------------
    def alert(self, alert: Any) -> None:
        """Record an analyzer alert and notify ``on_alert`` subscribers."""
        self.alerts.append(alert)
        if self.metrics is not None:
            self.metrics.counter(
                "alerts_total",
                help="structured alerts fired by online analyzers",
                unit="alerts",
            ).inc(
                1,
                analyzer=getattr(alert, "analyzer", "unknown"),
                severity=getattr(alert, "severity", "warning"),
            )
        for sub in self._subscribers:
            on_alert = getattr(sub, "on_alert", None)
            if callable(on_alert):
                on_alert(alert)

    def finalize(self, time_ms: float | None = None) -> None:
        """Tell subscribers the run ended (``finalize(time_ms)`` hook)."""
        for sub in self._subscribers:
            fin = getattr(sub, "finalize", None)
            if callable(fin):
                fin(time_ms)

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def retained(self, topic: str | None = None) -> list[TelemetryEvent]:
        """Events currently in the ring, oldest first."""
        live = self.events[self._start :]
        if topic is None:
            return list(live)
        return [e for e in live if e.topic == topic]

    def series(self, topic: str, key: str) -> list[tuple[float, float]]:
        """``(time_ms, value)`` pairs of one topic's named value."""
        return [
            (e.time_ms, e.values[key])
            for e in self.retained(topic)
            if key in e.values
        ]

    def published(self, topic: str | None = None) -> int:
        """Publish attempts so far (admitted or not)."""
        if topic is None:
            return sum(self._topic_counts.values())
        return self._topic_counts.get(topic, 0)

    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    def stats(self) -> dict[str, Any]:
        """JSON-safe accounting summary for run artifacts."""
        return {
            "capacity": self.capacity,
            "retained": len(self.events) - self._start,
            "published": {
                t: c for t, c in sorted(self._topic_counts.items())
            },
            "dropped": {
                f"{topic}/{reason}": count
                for (topic, reason), count in sorted(self.dropped.items())
            },
            "alerts": len(self.alerts),
        }

    def __len__(self) -> int:
        return len(self.events) - self._start

    def clear(self) -> None:
        """Drop all retained events, counters and alerts (policies stay)."""
        self.events.clear()
        self._start = 0
        self._seq = 0
        self._topic_counts.clear()
        self.dropped.clear()
        self.alerts.clear()
        for res in self._reservoirs.values():
            res.values.clear()
            res.seen = 0
