"""Self-contained HTML run reports from run artifacts.

``repro report --metrics run.json [--trace run.jsonl] -o report.html``
renders one HTML file — inline CSS, inline SVG charts, zero external
assets — from the artifacts a ``repro simulate`` run already writes:

* the **sync-error curve** (spread over simulated time, from the
  ``sync`` probe series);
* the **fragment-count timeline** (Borůvka phases collapsing fragments
  to one tree);
* **per-kind message bills** from the ``messages_total`` counter;
* the **alert log** fired by the online analyzers, plus the telemetry
  bus drop accounting;
* headline result numbers and the span tree when present.

Everything is derived from the metrics JSON document
(:func:`repro.obs.exporters.metrics_document` schema ``repro.obs/1``);
the optional JSONL trace only adds event-category counts.  A report can
therefore be produced long after the run, on another machine, from the
committed artifacts alone.
"""

from __future__ import annotations

import html
import json
import pathlib
from typing import Any, Sequence

from repro.sim.trace import TraceRecord

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 960px; color: #1c2733;
       background: #fcfdfe; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #2a6edb;
     padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; color: #2a6edb; }
table { border-collapse: collapse; margin: .5rem 0; font-size: .85rem; }
th, td { border: 1px solid #d4dde8; padding: .25rem .6rem;
         text-align: right; }
th { background: #eef3fa; }
td.l, th.l { text-align: left; }
.alert-critical { color: #b3261e; font-weight: 600; }
.alert-warning { color: #9a6700; font-weight: 600; }
.up { color: #b3261e; font-weight: 600; }
.down { color: #188554; font-weight: 600; }
.muted { color: #6b7a8c; font-size: .8rem; }
svg { background: #fff; border: 1px solid #d4dde8; }
pre { background: #f4f7fb; border: 1px solid #d4dde8; padding: .6rem;
      font-size: .78rem; overflow-x: auto; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return _esc(value)


# ----------------------------------------------------------------------
# inline SVG charts
# ----------------------------------------------------------------------
def _svg_series(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 860,
    height: int = 220,
    color: str = "#2a6edb",
    x_label: str = "time (ms)",
    y_label: str = "",
    step: bool = False,
) -> str:
    """One time series as a self-contained SVG line chart."""
    pts = [(float(x), float(y)) for x, y in points]
    pts = [(x, y) for x, y in pts if x == x and y == y]  # drop NaNs
    if not pts:
        return '<p class="muted">no samples recorded</p>'
    pad_l, pad_r, pad_t, pad_b = 64, 16, 14, 34
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(0.0, min(ys)), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b

    def sx(x: float) -> float:
        return pad_l + (x - x_min) / x_span * plot_w

    def sy(y: float) -> float:
        return pad_t + (1.0 - (y - y_min) / y_span) * plot_h

    coords = []
    prev_y = None
    for x, y in pts:
        if step and prev_y is not None:
            coords.append(f"{sx(x):.1f},{sy(prev_y):.1f}")
        coords.append(f"{sx(x):.1f},{sy(y):.1f}")
        prev_y = y
    polyline = " ".join(coords)
    gridlines = []
    for frac in (0.0, 0.5, 1.0):
        gy = pad_t + frac * plot_h
        gv = y_max - frac * y_span
        gridlines.append(
            f'<line x1="{pad_l}" y1="{gy:.1f}" x2="{width - pad_r}" '
            f'y2="{gy:.1f}" stroke="#e3eaf2"/>'
            f'<text x="{pad_l - 6}" y="{gy + 4:.1f}" text-anchor="end" '
            f'font-size="10" fill="#6b7a8c">{gv:,.3g}</text>'
        )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
        + "".join(gridlines)
        + f'<polyline points="{polyline}" fill="none" stroke="{color}" '
        f'stroke-width="1.6"/>'
        + f'<text x="{pad_l}" y="{height - 10}" font-size="10" '
        f'fill="#6b7a8c">{_esc(x_label)}: {x_min:,.0f} – {x_max:,.0f}</text>'
        + (
            f'<text x="{width - pad_r}" y="{height - 10}" text-anchor="end" '
            f'font-size="10" fill="#6b7a8c">{_esc(y_label)}</text>'
            if y_label
            else ""
        )
        + "</svg>"
    )


# ----------------------------------------------------------------------
# document accessors
# ----------------------------------------------------------------------
def _probe_series(
    doc: dict[str, Any], probe: str, key: str
) -> list[tuple[float, float]]:
    out = []
    for sample in doc.get("probes", []):
        if sample.get("probe") != probe:
            continue
        value = sample.get(key)
        if isinstance(value, (int, float)):
            out.append((float(sample.get("time_ms", 0.0)), float(value)))
    return out


def _metric_samples(doc: dict[str, Any], name: str) -> list[dict[str, Any]]:
    metric = doc.get("metrics", {}).get(name)
    if not metric:
        return []
    return metric.get("samples", [])


def _message_bills(doc: dict[str, Any]) -> dict[str, dict[str, float]]:
    """``{algorithm: {kind: count}}`` out of the messages_total samples."""
    bills: dict[str, dict[str, float]] = {}
    for sample in _metric_samples(doc, "messages_total"):
        labels = sample.get("labels", {})
        algo = labels.get("algorithm", "?")
        kind = labels.get("kind", "?")
        per_algo = bills.setdefault(algo, {})
        per_algo[kind] = per_algo.get(kind, 0) + sample.get("value", 0)
    return bills


# ----------------------------------------------------------------------
# report sections
# ----------------------------------------------------------------------
def _section_headline(doc: dict[str, Any]) -> str:
    rows = []
    for key in ("experiment", "algorithm", "backend", "n", "seed", "faults"):
        if key in doc:
            rows.append(
                f'<tr><th class="l">{_esc(key)}</th>'
                f'<td class="l">{_fmt(doc[key])}</td></tr>'
            )
    telemetry = doc.get("telemetry")
    if telemetry:
        published = sum(telemetry.get("published", {}).values())
        dropped = sum(telemetry.get("dropped", {}).values())
        rows.append(
            f'<tr><th class="l">telemetry samples</th><td class="l">'
            f"{published:,} published · {dropped:,} dropped · "
            f'{telemetry.get("retained", 0):,} retained</td></tr>'
        )
    if not rows:
        return ""
    return "<h2>Run</h2><table>" + "".join(rows) + "</table>"


def _section_alerts(doc: dict[str, Any]) -> str:
    alerts = doc.get("alerts", [])
    if not alerts:
        return (
            "<h2>Alerts</h2>"
            '<p class="muted">no analyzer alerts fired</p>'
        )
    rows = [
        "<tr><th>time (ms)</th><th class=l>severity</th>"
        "<th class=l>analyzer</th><th class=l>message</th></tr>"
    ]
    for alert in alerts:
        sev = _esc(alert.get("severity", "warning"))
        rows.append(
            f"<tr><td>{_fmt(alert.get('time_ms', 0.0))}</td>"
            f'<td class="l alert-{sev}">{sev}</td>'
            f'<td class="l">{_esc(alert.get("analyzer", "?"))}</td>'
            f'<td class="l">{_esc(alert.get("message", ""))}</td></tr>'
        )
    return "<h2>Alerts</h2><table>" + "".join(rows) + "</table>"


def _section_bills(doc: dict[str, Any]) -> str:
    bills = _message_bills(doc)
    if not bills:
        return ""
    parts = ["<h2>Message bills</h2>"]
    for algo, kinds in sorted(bills.items()):
        total = sum(kinds.values())
        rows = ['<tr><th class="l">kind</th><th>messages</th><th>share</th></tr>']
        for kind, count in sorted(kinds.items(), key=lambda kv: -kv[1]):
            share = count / total if total else 0.0
            rows.append(
                f'<tr><td class="l">{_esc(kind)}</td>'
                f"<td>{_fmt(count)}</td><td>{share:.1%}</td></tr>"
            )
        rows.append(
            f'<tr><th class="l">total</th><th>{_fmt(total)}</th><th></th></tr>'
        )
        parts.append(
            f'<p class="muted">algorithm: {_esc(algo)}</p>'
            "<table>" + "".join(rows) + "</table>"
        )
    return "".join(parts)


def _section_drops(doc: dict[str, Any]) -> str:
    telemetry = doc.get("telemetry")
    if not telemetry:
        return ""
    dropped = telemetry.get("dropped", {})
    published = telemetry.get("published", {})
    rows = ['<tr><th class="l">topic</th><th>published</th></tr>']
    for topic, count in sorted(published.items()):
        rows.append(
            f'<tr><td class="l">{_esc(topic)}</td><td>{_fmt(count)}</td></tr>'
        )
    drop_rows = ""
    if dropped:
        drop_rows = (
            '<tr><th class="l">dropped (topic/reason)</th><th>count</th></tr>'
            + "".join(
                f'<tr><td class="l">{_esc(key)}</td><td>{_fmt(count)}</td></tr>'
                for key, count in sorted(dropped.items())
            )
        )
    return (
        "<h2>Telemetry bus</h2><table>"
        + "".join(rows)
        + drop_rows
        + "</table>"
    )


def _section_hot_paths(doc: dict[str, Any], top: int = 10) -> str:
    """Top-N hot call paths by self time, from the document's span trees."""
    spans = doc.get("spans")
    if not spans:
        return ""
    from repro.obs.profile import hot_paths

    rows = [
        '<tr><th class="l">call path</th><th>self (ms)</th><th>calls</th></tr>'
    ]
    for path, self_ms, calls in hot_paths(spans, top=top):
        rows.append(
            f'<tr><td class="l">{_esc(path)}</td>'
            f"<td>{self_ms:,.2f}</td><td>{_fmt(calls)}</td></tr>"
        )
    return (
        f"<h2>Hot paths (top {top} by self time)</h2><table>"
        + "".join(rows)
        + "</table>"
        '<p class="muted">self time = span duration minus child spans; '
        "export the full flame graph with <code>repro profile "
        "--folded</code>.</p>"
    )


def _section_trends(history_series: Any) -> str:
    """Bench-history trend table (sparklines); empty without a series."""
    if not history_series:
        return ""
    from repro.obs.history import render_trend_section

    return render_trend_section(history_series)


def _section_trace(records: Sequence[TraceRecord] | None) -> str:
    if not records:
        return ""
    counts: dict[str, int] = {}
    for rec in records:
        counts[rec.category] = counts.get(rec.category, 0) + 1
    rows = ['<tr><th class="l">category</th><th>events</th></tr>'] + [
        f'<tr><td class="l">{_esc(cat)}</td><td>{_fmt(count)}</td></tr>'
        for cat, count in sorted(counts.items())
    ]
    causal = ""
    if any("lc" in rec.data for rec in records):
        max_lc = max(int(rec.data.get("lc", 0)) for rec in records)
        causal = (
            f'<p class="muted">causally ordered: Lamport clocks up to '
            f"{max_lc:,}</p>"
        )
    return (
        f"<h2>Trace</h2><table>{''.join(rows)}</table>{causal}"
    )


def render_run_report(
    doc: dict[str, Any],
    trace_records: Sequence[TraceRecord] | None = None,
    *,
    title: str = "repro run report",
    history_series: Any = None,
) -> str:
    """Render one self-contained HTML document from a metrics document.

    ``history_series`` (a ``repro.obs.history.bench_series`` mapping)
    appends the benchmark-trend sparkline section.
    """
    sync_curve = _probe_series(doc, "sync", "spread_ms")
    frag_curve = _probe_series(doc, "fragments", "count")
    body = [
        f"<h1>{_esc(title)}</h1>",
        _section_headline(doc),
        "<h2>Sync-error curve</h2>",
        _svg_series(sync_curve, y_label="spread (ms)"),
        "<h2>Fragment-count timeline</h2>",
        _svg_series(frag_curve, y_label="fragments", color="#188554",
                    step=True),
        _section_alerts(doc),
        _section_bills(doc),
        _section_hot_paths(doc),
        _section_drops(doc),
        _section_trace(trace_records),
        _section_trends(history_series),
    ]
    return (
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
        + "".join(part for part in body if part)
        + "</body></html>\n"
    )


def write_run_report(
    doc: dict[str, Any],
    path: str | pathlib.Path,
    trace_records: Sequence[TraceRecord] | None = None,
    *,
    title: str = "repro run report",
    history_series: Any = None,
) -> pathlib.Path:
    """Render and write the HTML report; returns the output path."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(
        render_run_report(
            doc, trace_records, title=title, history_series=history_series
        )
    )
    return p


def load_metrics_document(path: str | pathlib.Path) -> dict[str, Any]:
    """Read a metrics JSON artifact (schema-checked)."""
    doc = json.loads(pathlib.Path(path).read_text())
    if not isinstance(doc, dict) or "metrics" not in doc:
        raise ValueError(f"{path}: not a metrics document (missing 'metrics')")
    return doc
