"""Cross-process observability: mergeable per-worker snapshots.

A sharded run (the sweep pool today, multi-cell sharding tomorrow)
produces one :class:`~repro.obs.Observability` bundle **per worker**.
This module turns each bundle into a JSON-safe *aggregation snapshot*
(schema ``repro.obs.agg/1``) and defines a pure merge over snapshots so
the fleet's observability collapses into one registry no matter how the
workers were scheduled:

* **counters** merge by summation per (name, label set);
* **histograms** merge bucket-wise — bucket boundaries must be
  identical, a mismatch is an explicit :class:`ValueError`, never a
  silent misalignment (see :meth:`repro.obs.metrics.Histogram.merge`);
* **gauges** merge by *deterministic last-writer*: every gauge sample
  carries the integer id of the worker that wrote it, and the sample
  from the highest worker id wins — a commutative, associative rule, so
  merge order never matters;
* **span trees** are stitched under one synthetic ``merged`` root with
  one ``worker:<id>`` child per worker, ordered by id;
* **telemetry drop ledgers** (and published counts, and alerts) merge by
  per-(topic, reason) summation; alerts sort by their content.

:func:`merge_snapshots` first orders its inputs by worker id, then
folds pairwise — so the result is a pure function of the snapshot *set*
and two merges over the same snapshots are byte-identical
(:func:`canonical_snapshot`) regardless of worker completion order.
Worker-id overlap between two snapshots is an error: it is the signature
of merging the same worker twice.

The merged snapshot round-trips back into a live
:class:`~repro.obs.metrics.MetricsRegistry` via :func:`to_registry`, so
every existing exporter (Prometheus text, metrics JSON, the HTML run
report) renders fleet-wide aggregates with no new code paths.
"""

from __future__ import annotations

import pathlib
from typing import Any, Iterable, Sequence

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

SCHEMA = "repro.obs.agg/1"


def _canonical_json(obj: Any) -> str:
    # lazy import: repro.conformance imports repro.obs at package load,
    # so a module-level import here would be circular
    from repro.conformance.canonical import canonical_json

    return canonical_json(obj)


# ----------------------------------------------------------------------
# snapshot capture
# ----------------------------------------------------------------------
def _decumulate(buckets: Sequence[Sequence[Any]]) -> list[int]:
    """Raw per-bucket counts from the cumulative ``(le, count)`` export."""
    raw, prev = [], 0
    for _le, cumulative in buckets:
        raw.append(int(cumulative) - prev)
        prev = int(cumulative)
    return raw


def worker_snapshot(source: Any, worker_id: int) -> dict[str, Any]:
    """One worker's observability, reduced to a mergeable JSON document.

    ``source`` is an :class:`~repro.obs.Observability` bundle or a bare
    :class:`~repro.obs.metrics.MetricsRegistry` (duck-typed on
    ``.metrics``).  ``worker_id`` must be a non-negative integer unique
    within the fleet — it is the gauge last-writer tiebreak and the span
    stitch key.
    """
    worker_id = int(worker_id)
    if worker_id < 0:
        raise ValueError(f"worker_id must be >= 0, got {worker_id}")
    registry = source if isinstance(source, MetricsRegistry) else source.metrics

    metrics: dict[str, Any] = {}
    for metric in registry:
        entry: dict[str, Any] = {
            "kind": metric.kind,
            "help": metric.help,
            "unit": metric.unit,
        }
        if isinstance(metric, Counter):
            entry["samples"] = [
                {"labels": s["labels"], "value": s["value"]}
                for s in metric.samples()
            ]
        elif isinstance(metric, Gauge):
            entry["samples"] = [
                {"labels": s["labels"], "value": s["value"], "writer": worker_id}
                for s in metric.samples()
            ]
        elif isinstance(metric, Histogram):
            entry["bounds"] = list(metric.buckets)
            entry["samples"] = [
                {
                    "labels": s["labels"],
                    "counts": _decumulate(s["buckets"]),
                    "sum": s["sum"],
                    "count": s["count"],
                }
                for s in metric.samples()
            ]
        else:  # pragma: no cover - no other metric kinds exist
            continue
        metrics[metric.name] = entry

    spans: dict[str, list[dict[str, Any]]] = {}
    recorder = getattr(source, "spans", None)
    if recorder is not None and getattr(recorder, "roots", None):
        spans[str(worker_id)] = recorder.to_dicts()

    published: dict[str, float] = {}
    dropped: dict[str, float] = {}
    alerts: list[dict[str, Any]] = []
    bus = getattr(source, "bus", None)
    if bus is not None:
        stats = bus.stats()
        published = {k: float(v) for k, v in stats["published"].items()}
        dropped = {k: float(v) for k, v in stats["dropped"].items()}
        for alert in bus.alerts:
            doc = alert.to_dict() if hasattr(alert, "to_dict") else dict(alert)
            alerts.append({**doc, "worker": worker_id})

    return {
        "schema": SCHEMA,
        "workers": [worker_id],
        "metrics": metrics,
        "spans": spans,
        "telemetry": {
            "published": published,
            "dropped": dropped,
            "alerts": alerts,
        },
    }


def empty_snapshot() -> dict[str, Any]:
    """The merge identity: a snapshot with no workers and no data."""
    return {
        "schema": SCHEMA,
        "workers": [],
        "metrics": {},
        "spans": {},
        "telemetry": {"published": {}, "dropped": {}, "alerts": []},
    }


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _merge_meta(a: dict[str, Any], b: dict[str, Any], name: str) -> dict[str, Any]:
    if a["kind"] != b["kind"]:
        raise ValueError(
            f"metric {name!r}: kind mismatch ({a['kind']} vs {b['kind']})"
        )
    # help/unit: deterministic commutative choice (lexicographic max of
    # the non-empty candidates) so merge order cannot change the result
    return {
        "kind": a["kind"],
        "help": max(a.get("help", ""), b.get("help", "")),
        "unit": max(a.get("unit", ""), b.get("unit", "")),
    }


def _merge_counter(a: dict, b: dict, name: str) -> dict[str, Any]:
    out = _merge_meta(a, b, name)
    values: dict[tuple, float] = {}
    labels_by_key: dict[tuple, dict[str, str]] = {}
    for entry in (a, b):
        for s in entry["samples"]:
            key = _label_key(s["labels"])
            labels_by_key.setdefault(key, dict(s["labels"]))
            values[key] = values.get(key, 0) + s["value"]
    out["samples"] = [
        {"labels": labels_by_key[k], "value": values[k]}
        for k in sorted(values)
    ]
    return out


def _merge_gauge(a: dict, b: dict, name: str) -> dict[str, Any]:
    out = _merge_meta(a, b, name)
    best: dict[tuple, dict[str, Any]] = {}
    for entry in (a, b):
        for s in entry["samples"]:
            key = _label_key(s["labels"])
            held = best.get(key)
            # deterministic last-writer: highest worker id wins
            if held is None or s["writer"] > held["writer"]:
                best[key] = s
    out["samples"] = [
        {
            "labels": dict(best[k]["labels"]),
            "value": best[k]["value"],
            "writer": best[k]["writer"],
        }
        for k in sorted(best)
    ]
    return out


def _merge_histogram(a: dict, b: dict, name: str) -> dict[str, Any]:
    out = _merge_meta(a, b, name)
    bounds_a = [float(x) for x in a["bounds"]]
    bounds_b = [float(x) for x in b["bounds"]]
    if bounds_a != bounds_b:
        raise ValueError(
            f"histogram {name!r}: bucket boundaries differ "
            f"({bounds_a} vs {bounds_b}); refusing to merge misaligned buckets"
        )
    out["bounds"] = bounds_a
    merged: dict[tuple, dict[str, Any]] = {}
    for entry in (a, b):
        for s in entry["samples"]:
            if len(s["counts"]) != len(bounds_a) + 1:
                raise ValueError(
                    f"histogram {name!r}: sample has {len(s['counts'])} "
                    f"buckets, bounds imply {len(bounds_a) + 1}"
                )
            key = _label_key(s["labels"])
            held = merged.get(key)
            if held is None:
                merged[key] = {
                    "labels": dict(s["labels"]),
                    "counts": list(s["counts"]),
                    "sum": s["sum"],
                    "count": s["count"],
                }
            else:
                held["counts"] = [
                    x + y for x, y in zip(held["counts"], s["counts"])
                ]
                held["sum"] += s["sum"]
                held["count"] += s["count"]
    out["samples"] = [merged[k] for k in sorted(merged)]
    return out


_MERGERS = {
    "counter": _merge_counter,
    "gauge": _merge_gauge,
    "histogram": _merge_histogram,
}


def _alert_sort_key(alert: dict[str, Any]) -> tuple:
    return (
        float(alert.get("time_ms", 0.0)),
        int(alert.get("worker", -1)),
        str(alert.get("analyzer", "")),
        str(alert.get("message", "")),
    )


def merge_two(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Merge two snapshots (associative and commutative).

    Raises :class:`ValueError` on schema mismatch, overlapping worker
    ids (the signature of double-merging one worker), metric kind
    conflicts, or mismatched histogram bucket boundaries.
    """
    for snap in (a, b):
        if snap.get("schema") != SCHEMA:
            raise ValueError(
                f"expected snapshot schema {SCHEMA!r}, "
                f"got {snap.get('schema')!r}"
            )
    overlap = set(a["workers"]) & set(b["workers"])
    if overlap:
        raise ValueError(
            f"worker ids {sorted(overlap)} appear in both snapshots; "
            "each worker must be merged exactly once"
        )

    metrics: dict[str, Any] = {}
    for name in sorted(set(a["metrics"]) | set(b["metrics"])):
        ma, mb = a["metrics"].get(name), b["metrics"].get(name)
        if ma is None or mb is None:
            present = ma if mb is None else mb
            metrics[name] = {
                **present,
                "samples": [dict(s) for s in present["samples"]],
            }
        else:
            metrics[name] = _MERGERS[ma["kind"]](ma, mb, name)

    spans = {**a["spans"], **b["spans"]}
    ta, tb = a["telemetry"], b["telemetry"]
    published: dict[str, float] = dict(ta["published"])
    for topic, count in tb["published"].items():
        published[topic] = published.get(topic, 0) + count
    dropped: dict[str, float] = dict(ta["dropped"])
    for key, count in tb["dropped"].items():
        dropped[key] = dropped.get(key, 0) + count

    return {
        "schema": SCHEMA,
        "workers": sorted(set(a["workers"]) | set(b["workers"])),
        "metrics": metrics,
        "spans": {k: spans[k] for k in sorted(spans, key=int)},
        "telemetry": {
            "published": {k: published[k] for k in sorted(published)},
            "dropped": {k: dropped[k] for k in sorted(dropped)},
            "alerts": sorted(
                ta["alerts"] + tb["alerts"], key=_alert_sort_key
            ),
        },
    }


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Merge any number of worker snapshots into one.

    Inputs are first ordered by worker id, then folded pairwise through
    :func:`merge_two` — so the result (and its canonical bytes) is a
    pure function of the snapshot *set*, independent of the order the
    workers completed or the list was assembled in.
    """
    ordered = sorted(snapshots, key=lambda s: tuple(s.get("workers", [])))
    merged = empty_snapshot()
    for snap in ordered:
        merged = merge_two(merged, snap)
    return merged


def canonical_snapshot(snapshot: dict[str, Any]) -> str:
    """Canonical JSON text of a snapshot (the byte-compare form)."""
    return _canonical_json(snapshot)


def write_snapshot(
    snapshot: dict[str, Any], path: str | pathlib.Path
) -> pathlib.Path:
    """Write a snapshot as canonical JSON; returns the path."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(canonical_snapshot(snapshot) + "\n")
    return p


def read_snapshot(path: str | pathlib.Path) -> dict[str, Any]:
    """Read a snapshot written by :func:`write_snapshot` (schema-checked)."""
    import json

    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {doc.get('schema')!r}"
        )
    return doc


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
def to_registry(snapshot: dict[str, Any]) -> MetricsRegistry:
    """Rebuild a live :class:`MetricsRegistry` from a (merged) snapshot.

    The registry answers ``value()``/``total()``/``breakdown()`` queries
    and feeds every exporter, so fleet-wide aggregates ride the same
    rendering paths as single-run registries.
    """
    registry = MetricsRegistry()
    for name in sorted(snapshot["metrics"]):
        entry = snapshot["metrics"][name]
        kind = entry["kind"]
        if kind == "counter":
            counter = registry.counter(
                name, help=entry.get("help", ""), unit=entry.get("unit", "")
            )
            for s in entry["samples"]:
                counter.inc(s["value"], **s["labels"])
        elif kind == "gauge":
            gauge = registry.gauge(
                name, help=entry.get("help", ""), unit=entry.get("unit", "")
            )
            for s in entry["samples"]:
                gauge.set(s["value"], **s["labels"])
        elif kind == "histogram":
            hist = registry.histogram(
                name,
                buckets=tuple(entry["bounds"]),
                help=entry.get("help", ""),
                unit=entry.get("unit", ""),
            )
            hist.load_samples(
                [
                    (s["labels"], s["counts"], s["sum"], s["count"])
                    for s in entry["samples"]
                ]
            )
        else:
            raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
    return registry


def stitched_spans(snapshot: dict[str, Any]) -> dict[str, Any]:
    """All workers' span trees under one synthetic ``merged`` root.

    Workers appear as ``worker:<id>`` children ordered by id; each
    worker node's duration is the sum of its root spans, and the merged
    root's duration is the fleet total (busy time, not wall time — the
    workers ran concurrently).
    """
    children = []
    for key in sorted(snapshot["spans"], key=int):
        roots = snapshot["spans"][key]
        duration = sum(r.get("duration_ms", 0.0) for r in roots)
        children.append(
            {
                "name": f"worker:{key}",
                "duration_ms": round(duration, 6),
                "children": roots,
            }
        )
    return {
        "name": "merged",
        "duration_ms": round(
            sum(c["duration_ms"] for c in children), 6
        ),
        "attrs": {"workers": len(children)},
        "children": children,
    }
