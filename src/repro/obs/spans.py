"""Hierarchical wall-clock timing spans.

Usage::

    rec = SpanRecorder()
    with rec.span("st_run", n=400):
        with rec.span("boruvka_phase", phase=0):
            ...
    print(rec.render_tree())

Spans nest by dynamic scope: the innermost open span adopts new spans as
children.  Exceptions propagate but the span still closes with its
duration recorded (exception safety), so a crashed run leaves a usable
partial profile.

When the recorder is disabled, :meth:`SpanRecorder.span` returns one
shared no-op context manager — no allocation, no clock read — so
instrumented code can stay unconditional on hot-ish paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Span:
    """One timed section; ``duration_s`` is None while still open."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float | None = None
    children: list["Span"] = field(default_factory=list)
    #: True when the body raised (the span still carries its duration)
    failed: bool = False

    @property
    def duration_ms(self) -> float:
        return (self.duration_s or 0.0) * 1000.0

    def self_time_s(self) -> float:
        """Duration minus child durations (time spent in this span's own code)."""
        total = self.duration_s or 0.0
        return total - sum(c.duration_s or 0.0 for c in self.children)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.failed:
            out["failed"] = True
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class _NullSpan:
    """Shared zero-cost context manager used when recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager that closes one real span on exit."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: object, *exc: object) -> None:
        self._span.duration_s = time.perf_counter() - self._span.start_s
        self._span.failed = exc_type is not None
        stack = self._recorder._stack
        # pop to (and including) our span even if inner spans leaked open
        while stack:
            if stack.pop() is self._span:
                break
        return None


class SpanRecorder:
    """Collects a forest of :class:`Span` trees."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Open a child span of the innermost active span (or a new root)."""
        if not self.enabled:
            return _NULL_SPAN
        s = Span(name=name, attrs=attrs, start_s=time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(s)
        else:
            self.roots.append(s)
        self._stack.append(s)
        return _OpenSpan(self, s)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()

    def to_dicts(self) -> list[dict[str, Any]]:
        return [r.to_dict() for r in self.roots]

    # ------------------------------------------------------------------
    def render_tree(self, min_ms: float = 0.0) -> str:
        """ASCII span tree with per-span wall times.

        ``min_ms`` prunes spans shorter than the threshold (their hidden
        count is noted on the parent line).
        """
        lines: list[str] = []
        for root in self.roots:
            self._render(root, "", True, lines, min_ms, is_root=True)
        return "\n".join(lines) if lines else "(no spans recorded)"

    def _render(
        self,
        span: Span,
        prefix: str,
        last: bool,
        lines: list[str],
        min_ms: float,
        is_root: bool = False,
    ) -> None:
        attrs = (
            " [" + ", ".join(f"{k}={v}" for k, v in span.attrs.items()) + "]"
            if span.attrs
            else ""
        )
        marker = "" if is_root else ("└─ " if last else "├─ ")
        flag = "  !" if span.failed else ""
        lines.append(
            f"{prefix}{marker}{span.name}{attrs}  "
            f"{span.duration_ms:.2f} ms{flag}"
        )
        shown = [c for c in span.children if c.duration_ms >= min_ms]
        hidden = len(span.children) - len(shown)
        child_prefix = prefix + ("" if is_root else ("   " if last else "│  "))
        for i, child in enumerate(shown):
            self._render(
                child,
                child_prefix,
                i == len(shown) - 1 and hidden == 0,
                lines,
                min_ms,
            )
        if hidden:
            lines.append(f"{child_prefix}└─ ({hidden} spans < {min_ms} ms hidden)")
