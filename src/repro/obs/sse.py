"""Server-sent-events bridge from the telemetry bus.

The discovery service streams live telemetry (churn, fragment merges,
alerts) to HTTP clients as SSE frames.  :class:`SSEBridge` is an
ordinary :class:`~repro.obs.stream.TelemetryBus` subscriber that
renders every admitted event — and every analyzer alert — into a
wire-ready frame and retains the most recent ``capacity`` of them in a
bounded deque.  Consumers poll :meth:`frames_since` with their last
seen cursor, which is also how the ``Last-Event-ID`` reconnect contract
falls out for free: frame ids are the bridge's monotonically increasing
sequence numbers.

Frames are deterministic: payloads serialise with sorted keys and fixed
separators, and ids come from the bridge's own counter, so two services
fed the same seeded world emit byte-identical streams.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any

from repro.obs.stream import TelemetryEvent


def format_sse(event_type: str, data: str, *, event_id: int | None = None) -> str:
    """Render one SSE frame per the WHATWG EventSource wire format.

    Multi-line ``data`` becomes one ``data:`` line per payload line, so
    arbitrary JSON round-trips through conforming parsers.
    """
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event_type}")
    for part in data.split("\n"):
        lines.append(f"data: {part}")
    return "\n".join(lines) + "\n\n"


def _canonical_json(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class SSEBridge:
    """Bounded SSE frame buffer fed by a telemetry bus.

    Parameters
    ----------
    capacity:
        Maximum retained frames.  Older frames are evicted FIFO; a
        consumer whose cursor fell behind the window simply resumes
        from the oldest retained frame (standard SSE replay semantics).
    topics:
        When given, only these bus topics become ``event: telemetry``
        frames; alerts always pass through as ``event: alert``.
    """

    def __init__(
        self,
        *,
        capacity: int = 1024,
        topics: tuple[str, ...] = (),
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.topics = tuple(topics)
        self._frames: deque[str] = deque(maxlen=self.capacity)
        self._next_id = 0  # id of the next frame to be appended
        self.dropped = 0

    # ------------------------------------------------------------------
    # bus subscriber contract
    # ------------------------------------------------------------------
    def on_event(self, event: TelemetryEvent) -> None:
        if self.topics and event.topic not in self.topics:
            return
        payload = {
            "topic": event.topic,
            "time_ms": event.time_ms,
            "values": dict(event.values),
        }
        if event.labels:
            payload["labels"] = dict(event.labels)
        self._append("telemetry", payload)

    def on_alert(self, alert: Any) -> None:
        to_dict = getattr(alert, "to_dict", None)
        payload = to_dict() if callable(to_dict) else {"alert": str(alert)}
        self._append("alert", payload)

    def _append(self, event_type: str, payload: dict[str, Any]) -> None:
        frame = format_sse(
            event_type, _canonical_json(payload), event_id=self._next_id
        )
        if len(self._frames) == self.capacity:
            self.dropped += 1
        self._frames.append(frame)
        self._next_id += 1

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    @property
    def next_id(self) -> int:
        """Id the next appended frame will get (== frames ever appended)."""
        return self._next_id

    @property
    def oldest_id(self) -> int:
        """Id of the oldest retained frame."""
        return self._next_id - len(self._frames)

    def frames_since(
        self, cursor: int, *, limit: int | None = None
    ) -> tuple[list[str], int]:
        """Frames with id >= ``cursor`` and the new cursor to poll from.

        A cursor older than the retention window resumes from the
        oldest retained frame; a cursor in the future returns nothing.
        """
        start = max(int(cursor), self.oldest_id)
        if start >= self._next_id:
            return [], self._next_id
        skip = start - self.oldest_id
        frames = list(self._frames)[skip:]
        if limit is not None:
            frames = frames[: max(0, int(limit))]
        return frames, start + len(frames)
