"""Unified observability layer: metrics, spans, probes, exporters.

One :class:`Observability` bundle travels through a run and collects

* **metrics** — counters/gauges/histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry` (message bills by
  kind/codec, fragment counts, sync-error distributions, ...);
* **spans** — hierarchical wall-clock timing
  (:class:`~repro.obs.spans.SpanRecorder`) for ``repro profile``;
* **trace** — optional per-event :class:`~repro.sim.trace.TraceRecorder`
  retention for JSONL export (off by default: per-pulse tracing is the
  one genuinely hot-path cost);
* **probes** — periodic protocol samples
  (:class:`~repro.obs.probes.ProbeSet`): sync spread, fragment sizes,
  neighbour-table fill.

``STSimulation``/``FSTSimulation`` create a private bundle per run when
none is supplied, so every :class:`~repro.core.results.RunResult` carries
a metrics snapshot.  Hot kernels (:class:`~repro.core.pulsesync.
PulseSyncKernel`, :class:`~repro.core.beacon.BeaconDiscovery`,
:class:`~repro.sim.engine.Engine`) take ``obs=None`` and skip all
instrumentation when unset — the disabled path adds no per-event work.

An *active* bundle can be installed for a dynamic scope with
:func:`activate`; simulations with no explicit ``obs`` adopt it.  That is
how ``repro profile`` aggregates span trees across a whole experiment
without threading a parameter through every driver.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.aggregate import (
    canonical_snapshot,
    empty_snapshot,
    merge_snapshots,
    read_snapshot,
    stitched_spans,
    to_registry,
    worker_snapshot,
    write_snapshot,
)
from repro.obs.exporters import (
    metrics_document,
    read_jsonl_trace,
    render_prometheus,
    trace_to_jsonl,
    write_jsonl_trace,
    write_metrics_json,
)
from repro.obs.flight import FlightRecorder, load_bundle, render_flight_html
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.ops import (
    OpsPlane,
    OpsSpan,
    SLOBurnRate,
    SLOObjective,
    TraceContext,
    default_ops,
    default_plane,
    default_slos,
    install_default,
    render_trace,
)
from repro.obs.probes import ProbeSample, ProbeSet
from repro.obs.sse import SSEBridge, format_sse
from repro.obs.spans import Span, SpanRecorder
from repro.obs.stream import (
    DEFAULT_CAPACITY,
    EveryK,
    KeepAll,
    ReservoirSample,
    SamplingPolicy,
    TelemetryBus,
    TelemetryEvent,
)
from repro.sim.trace import TraceRecorder

__all__ = [
    "Counter",
    "EveryK",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KeepAll",
    "MetricsRegistry",
    "Observability",
    "OpsPlane",
    "OpsSpan",
    "ProbeSample",
    "ProbeSet",
    "ReservoirSample",
    "SLOBurnRate",
    "SLOObjective",
    "SSEBridge",
    "SamplingPolicy",
    "Span",
    "SpanRecorder",
    "TelemetryBus",
    "TelemetryEvent",
    "TraceContext",
    "activate",
    "canonical_snapshot",
    "default_ops",
    "default_plane",
    "default_slos",
    "empty_snapshot",
    "format_sse",
    "get_active",
    "install_default",
    "load_bundle",
    "merge_snapshots",
    "metrics_document",
    "read_jsonl_trace",
    "read_snapshot",
    "render_flight_html",
    "render_prometheus",
    "render_trace",
    "stitched_spans",
    "to_registry",
    "trace_to_jsonl",
    "worker_snapshot",
    "write_jsonl_trace",
    "write_metrics_json",
    "write_snapshot",
]


class Observability:
    """Bundle of the four observability facilities for one scope.

    Parameters
    ----------
    enabled:
        When False, spans become no-ops and no trace is kept.  Metrics
        and probes stay live — they are the accounting source of truth
        and amortized O(1) per run section, not per event.
    keep_trace:
        Retain per-event :class:`TraceRecord` objects for JSONL export.
        This is the only per-transmission cost, so it is opt-in.
    probe_interval_ms:
        Default spacing (simulated ms) between samples of each probe.
    stream:
        Attach a :class:`~repro.obs.stream.TelemetryBus` as ``self.bus``
        with the default analyzer set from
        :func:`repro.obs.analyzers.default_analyzers` subscribed.  Off
        by default; kernels guard every publish behind
        ``bus is not None``, so a bundle without a bus pays nothing.
    stream_capacity:
        Ring capacity of the attached bus (ignored without ``stream``).

    The bundle also carries ``self.ops`` — the non-canonical
    :class:`~repro.obs.ops.OpsPlane`, ``None`` unless one was installed
    process-wide (:func:`~repro.obs.ops.install_default`) or attached
    explicitly by the service wiring.  Everything above stays on the
    deterministic plane; the ops plane keeps its own sibling registry
    and bus, and is excluded from every canonical export.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        keep_trace: bool = False,
        probe_interval_ms: float = 1_000.0,
        stream: bool = False,
        stream_capacity: int | None = None,
    ) -> None:
        self.enabled = enabled
        self.ops: OpsPlane | None = default_plane()
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(enabled=enabled)
        self.trace: TraceRecorder | None = (
            TraceRecorder(keep_records=True) if keep_trace and enabled else None
        )
        self.probes = ProbeSet(interval_ms=probe_interval_ms)
        self.bus: TelemetryBus | None = None
        if stream and enabled:
            from repro.obs.analyzers import default_analyzers

            self.bus = TelemetryBus(
                capacity=(
                    stream_capacity
                    if stream_capacity is not None
                    else DEFAULT_CAPACITY
                ),
                metrics=self.metrics,
            )
            # deterministic distribution sample of the convergence signal
            self.bus.add_reservoir("sync", "spread_ms", capacity=256, seed=0)
            for analyzer in default_analyzers():
                self.bus.subscribe(analyzer)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Open a timing span (no-op context when disabled)."""
        return self.spans.span(name, **attrs)

    def account_messages(
        self, algorithm: str, bill: dict[str, tuple[int, str]]
    ) -> dict[str, int]:
        """Bill control messages and return the plain per-kind breakdown.

        ``bill`` maps message kind to ``(count, codec)``.  Every entry is
        recorded into the ``messages_total`` counter *and* returned as the
        ``RunResult.message_breakdown`` dict, so the Fig. 4 totals and the
        observability counters share one accounting path and cannot
        drift (asserted in ``tests/test_obs_integration.py``).
        """
        counter = self.metrics.counter(
            "messages_total",
            help="control messages until convergence, by kind and codec",
            unit="messages",
        )
        breakdown: dict[str, int] = {}
        for kind, (count, codec) in sorted(bill.items()):
            counter.inc(count, algorithm=algorithm, kind=kind, codec=codec)
            breakdown[kind] = count
        return breakdown

    def reset(self) -> None:
        """Clear all collected data (metric definitions survive)."""
        self.metrics.reset()
        self.spans.clear()
        self.probes.clear()
        if self.trace is not None:
            self.trace.clear()
        if self.bus is not None:
            self.bus.clear()


# ----------------------------------------------------------------------
# active-bundle scoping
# ----------------------------------------------------------------------
_ACTIVE: list[Observability] = []


def get_active() -> Observability | None:
    """The innermost bundle installed with :func:`activate`, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def activate(obs: Observability) -> Iterator[Observability]:
    """Install ``obs`` as the ambient bundle for the ``with`` body."""
    _ACTIVE.append(obs)
    try:
        yield obs
    finally:
        _ACTIVE.pop()
