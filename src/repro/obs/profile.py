"""Deterministic span profiler: self-time tables and flame-graph export.

Built on the existing span layer: a :class:`~repro.obs.spans.SpanRecorder`
(or the span dicts inside a metrics document / merged cross-process
snapshot) already carries the full call tree with wall-clock durations.
This module is pure post-processing — aggregation is a deterministic
function of the span forest, so the profiler adds *zero* runtime cost on
top of the spans the kernels already record.

Three views:

* :func:`profile_table` — per-span-name totals: call count, total time,
  self time (total minus children), share of the forest's root time.
  This is the per-kernel/per-phase table ``repro profile`` prints.
* :func:`folded_stacks` / :func:`render_folded` — the classic *folded
  stack* format (``root;child;leaf <microseconds>``), one line per
  distinct call path, consumable directly by ``flamegraph.pl`` and
  speedscope's "Brendan Gregg collapsed stacks" importer.  Exported by
  ``repro profile --folded``.
* :func:`hot_paths` — the top-N call paths by self time, rendered as a
  table in the HTML run report.

Plus :func:`simulated_rate`: simulated-slots-per-wall-second, the
throughput figure of merit for kernel work (slots default to 1 simulated
ms, the engine's slot width).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence


def _as_dicts(spans: Any) -> list[dict[str, Any]]:
    """Normalize a SpanRecorder / Span list / dict list to span dicts."""
    if hasattr(spans, "to_dicts"):
        return spans.to_dicts()
    out = []
    for s in spans:
        out.append(s.to_dict() if hasattr(s, "to_dict") else s)
    return out


def _self_ms(span: dict[str, Any]) -> float:
    total = float(span.get("duration_ms", 0.0))
    children = span.get("children", [])
    return total - sum(float(c.get("duration_ms", 0.0)) for c in children)


def walk_stacks(
    spans: Any, _prefix: tuple[str, ...] = ()
) -> Iterator[tuple[tuple[str, ...], dict[str, Any]]]:
    """Depth-first ``(call path, span dict)`` pairs over a span forest."""
    for span in _as_dicts(spans):
        path = _prefix + (str(span.get("name", "?")),)
        yield path, span
        for pair in walk_stacks(span.get("children", []), path):
            yield pair


# ----------------------------------------------------------------------
# per-name aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProfileRow:
    """Aggregated timing for one span name."""

    name: str
    calls: int
    total_ms: float
    self_ms: float
    #: self time as a fraction of the forest's summed root durations
    share: float


def profile_table(spans: Any) -> list[ProfileRow]:
    """Per-span-name call counts and total/self times, hottest first.

    Deterministic: rows sort by descending self time with the name as
    tiebreak, so two identical span forests produce identical tables.
    """
    roots = _as_dicts(spans)
    wall = sum(float(r.get("duration_ms", 0.0)) for r in roots)
    calls: dict[str, int] = {}
    total: dict[str, float] = {}
    self_t: dict[str, float] = {}
    for _path, span in walk_stacks(roots):
        name = str(span.get("name", "?"))
        calls[name] = calls.get(name, 0) + 1
        total[name] = total.get(name, 0.0) + float(span.get("duration_ms", 0.0))
        self_t[name] = self_t.get(name, 0.0) + _self_ms(span)
    rows = [
        ProfileRow(
            name=name,
            calls=calls[name],
            total_ms=total[name],
            self_ms=self_t[name],
            share=(self_t[name] / wall) if wall > 0 else 0.0,
        )
        for name in calls
    ]
    return sorted(rows, key=lambda r: (-r.self_ms, r.name))


def render_profile_table(rows: Sequence[ProfileRow], top: int = 0) -> str:
    """ASCII profile table (``top`` > 0 keeps only the hottest rows)."""
    shown = list(rows[:top] if top else rows)
    if not shown:
        return "(no spans recorded)"
    name_w = max(len(r.name) for r in shown)
    lines = [
        f"{'span':<{name_w}}  {'calls':>7}  {'total ms':>10}  "
        f"{'self ms':>10}  {'self %':>7}"
    ]
    for r in shown:
        lines.append(
            f"{r.name:<{name_w}}  {r.calls:>7}  {r.total_ms:>10.2f}  "
            f"{r.self_ms:>10.2f}  {r.share:>6.1%}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# folded stacks (flamegraph.pl / speedscope)
# ----------------------------------------------------------------------
def folded_stacks(spans: Any) -> dict[str, int]:
    """Self time in integer microseconds per distinct call path.

    Keys are semicolon-joined paths (``st_run;construction;mwoe_scan``),
    exactly the folded format flame-graph tools fold back into a flame.
    Frame names have ``;`` replaced by ``,`` so paths stay unambiguous.
    Zero-µs paths are kept only if they carry calls (their count still
    shapes the flame when a parent is hot).
    """
    folded: dict[str, int] = {}
    for path, span in walk_stacks(spans):
        key = ";".join(p.replace(";", ",") for p in path)
        micros = int(round(_self_ms(span) * 1000.0))
        folded[key] = folded.get(key, 0) + max(micros, 0)
    return folded


def render_folded(spans: Any) -> str:
    """Folded-stack lines, sorted by path for deterministic output."""
    folded = folded_stacks(spans)
    return "\n".join(f"{path} {count}" for path, count in sorted(folded.items()))


def hot_paths(spans: Any, top: int = 10) -> list[tuple[str, float, int]]:
    """Top-N call paths by self time: ``(path, self_ms, calls)`` rows."""
    acc: dict[str, tuple[float, int]] = {}
    for path, span in walk_stacks(spans):
        key = " > ".join(path)
        ms, calls = acc.get(key, (0.0, 0))
        acc[key] = (ms + _self_ms(span), calls + 1)
    rows = [(path, ms, calls) for path, (ms, calls) in acc.items()]
    rows.sort(key=lambda r: (-r[1], r[0]))
    return rows[:top]


# ----------------------------------------------------------------------
# throughput
# ----------------------------------------------------------------------
def simulated_rate(
    sim_time_ms: float, wall_s: float, slot_ms: float = 1.0
) -> float:
    """Simulated slots advanced per wall-clock second.

    The figure of merit for kernel throughput: a run covering 60 000
    simulated ms in 0.5 wall seconds at 1 ms slots advances 120 000
    slots/s.  Returns 0.0 when the wall time is not positive.
    """
    if wall_s <= 0 or slot_ms <= 0:
        return 0.0
    return (sim_time_ms / slot_ms) / wall_s


def rate_from_registry(registry: Any) -> float | None:
    """Slots-per-wall-second from a (merged) sweep registry, if billed.

    The sweep runner bills ``sweep_sim_time_ms_total`` and
    ``sweep_wall_seconds_total`` per worker; after a merge the counters
    are fleet totals and the ratio is the fleet's aggregate throughput.
    Returns ``None`` when either counter is absent.
    """
    sim = registry.get("sweep_sim_time_ms_total")
    wall = registry.get("sweep_wall_seconds_total")
    if sim is None or wall is None:
        return None
    wall_s = wall.total()
    if wall_s <= 0:
        return None
    return simulated_rate(sim.total(), wall_s)
