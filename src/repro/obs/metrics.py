"""Run-scoped metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the *single source of truth* for protocol accounting:
:class:`~repro.core.st.STSimulation` and
:class:`~repro.core.fst.FSTSimulation` bill every control message through
:meth:`Counter.inc` and derive their ``RunResult.message_breakdown`` from
the same table, so the paper's Fig. 4 totals and the observability
counters cannot drift apart.

Metrics are labelled (Prometheus-style): one :class:`Counter` family such
as ``messages_total`` holds one sample per distinct label set
(``algorithm="st", kind="handshake", codec="rach2"``).  Counters are
monotonic — negative increments raise.  Histograms use fixed upper-bound
buckets chosen at creation time, so bucketing is deterministic and two
snapshots are always mergeable.

All state is plain Python (no numpy), cheap to create per run, and
serialized by :meth:`MetricsRegistry.snapshot` into a JSON-safe dict that
:mod:`repro.obs.exporters` writes out.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

LabelValue = "str | int | float | bool"

#: Default histogram buckets (generic positive quantities).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable key for one label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _key_to_labels(key: tuple[tuple[str, str], ...]) -> dict[str, str]:
    return dict(key)


class Metric:
    """Common behaviour of one named metric family."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.unit = unit

    def samples(self) -> list[dict[str, Any]]:  # pragma: no cover - abstract
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "unit": self.unit,
            "samples": self.samples(),
        }


class _BoundCounter:
    """One pre-resolved counter sample; see :meth:`Counter.bound`."""

    __slots__ = ("_values", "_key", "_name")

    def __init__(self, counter: "Counter", key: tuple) -> None:
        self._values = counter._values
        self._key = key
        self._name = counter.name

    def inc(self, value: float = 1) -> None:
        if value < 0:
            raise ValueError(
                f"counter {self._name!r} is monotonic; got inc({value})"
            )
        self._values[self._key] = self._values.get(self._key, 0) + value


class Counter(Metric):
    """Monotonically increasing labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, value: float = 1, **labels: Any) -> None:
        """Add ``value`` (>= 0) to the sample selected by ``labels``."""
        if value < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; got inc({value})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + value

    def bound(self, **labels: Any) -> _BoundCounter:
        """Fast-path view for hot loops: the label key is resolved once
        here instead of on every ``inc`` call."""
        return _BoundCounter(self, _label_key(labels))

    def value(self, **labels: Any) -> float:
        """Current value of one label set (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0)

    def total(self, **match: Any) -> float:
        """Sum over all samples whose labels include ``match``."""
        want = set(_label_key(match))
        return sum(
            v for k, v in self._values.items() if want.issubset(set(k))
        )

    def breakdown(self, label: str, **match: Any) -> dict[str, float]:
        """Totals grouped by one label, restricted to ``match``.

        ``messages_total.breakdown("kind", algorithm="st")`` is exactly
        the Fig. 4 per-kind message bill.
        """
        want = set(_label_key(match))
        out: dict[str, float] = {}
        for key, v in self._values.items():
            if not want.issubset(set(key)):
                continue
            for k, lv in key:
                if k == label:
                    out[lv] = out.get(lv, 0) + v
        return out

    def samples(self) -> list[dict[str, Any]]:
        return [
            {"labels": _key_to_labels(k), "value": v}
            for k, v in sorted(self._values.items())
        ]

    def reset(self) -> None:
        self._values.clear()


class Gauge(Metric):
    """Labelled gauge — a value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = value

    def add(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + value

    def set_max(self, value: float, **labels: Any) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        key = _label_key(labels)
        if value > self._values.get(key, -math.inf):
            self._values[key] = value

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0)

    def samples(self) -> list[dict[str, Any]]:
        return [
            {"labels": _key_to_labels(k), "value": v}
            for k, v in sorted(self._values.items())
        ]

    def reset(self) -> None:
        self._values.clear()


class _HistSample:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class _BoundHistogram:
    """One pre-resolved histogram sample; see :meth:`Histogram.bound`."""

    __slots__ = ("_buckets", "_sample")

    def __init__(self, buckets: tuple[float, ...], sample: _HistSample) -> None:
        self._buckets = buckets
        self._sample = sample

    def observe(self, value: float) -> None:
        s = self._sample
        for i, bound in enumerate(self._buckets):
            if value <= bound:
                s.counts[i] += 1
                break
        else:
            s.counts[-1] += 1
        s.sum += value
        s.count += 1


class Histogram(Metric):
    """Fixed-bucket labelled histogram.

    ``buckets`` are ascending finite upper bounds; an implicit ``+inf``
    bucket catches the tail.  Exported bucket counts are *cumulative*
    (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
        unit: str = "",
    ) -> None:
        super().__init__(name, help, unit)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must ascend, got {bounds}")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+inf is implicit)")
        self.buckets = bounds
        self._samples: dict[tuple[tuple[str, str], ...], _HistSample] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        s = self._samples.get(key)
        if s is None:
            s = self._samples[key] = _HistSample(len(self.buckets) + 1)
        # linear scan beats bisect for the short bucket lists used here
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                s.counts[i] += 1
                break
        else:
            s.counts[-1] += 1
        s.sum += value
        s.count += 1

    def bound(self, **labels: Any) -> _BoundHistogram:
        """Fast-path view for hot loops: the label key is resolved once
        here instead of on every ``observe`` call."""
        key = _label_key(labels)
        s = self._samples.get(key)
        if s is None:
            s = self._samples[key] = _HistSample(len(self.buckets) + 1)
        return _BoundHistogram(self.buckets, s)

    def count(self, **labels: Any) -> int:
        s = self._samples.get(_label_key(labels))
        return s.count if s is not None else 0

    def sum_(self, **labels: Any) -> float:
        s = self._samples.get(_label_key(labels))
        return s.sum if s is not None else 0.0

    def bucket_counts(self, **labels: Any) -> list[tuple[str, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``("+inf", n)``."""
        s = self._samples.get(_label_key(labels))
        raw = s.counts if s is not None else [0] * (len(self.buckets) + 1)
        les = [repr(b) for b in self.buckets] + ["+inf"]
        out, running = [], 0
        for le, c in zip(les, raw):
            running += c
            out.append((le, running))
        return out

    def samples(self) -> list[dict[str, Any]]:
        return [
            {
                "labels": _key_to_labels(k),
                "buckets": [
                    list(pair) for pair in self.bucket_counts(**_key_to_labels(k))
                ],
                "sum": s.sum,
                "count": s.count,
            }
            for k, s in sorted(self._samples.items())
        ]

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram, bucket-wise.

        Bucket boundaries must be *identical* — a mismatch (including a
        different bucket count) raises :class:`ValueError` instead of
        silently misaligning counts.  Merging an empty histogram is a
        no-op; label sets only present in ``other`` are adopted.
        """
        if not isinstance(other, Histogram):
            raise TypeError(
                f"can only merge Histogram into Histogram, got "
                f"{type(other).__name__}"
            )
        if self.buckets != other.buckets:
            raise ValueError(
                f"histogram {self.name!r}: bucket boundaries differ "
                f"({self.buckets} vs {other.buckets}); refusing to merge "
                "misaligned buckets"
            )
        for key, theirs in other._samples.items():
            mine = self._samples.get(key)
            if mine is None:
                mine = self._samples[key] = _HistSample(len(self.buckets) + 1)
            for i, c in enumerate(theirs.counts):
                mine.counts[i] += c
            mine.sum += theirs.sum
            mine.count += theirs.count

    def load_samples(
        self,
        entries: "list[tuple[dict[str, Any], list[int], float, int]]",
    ) -> None:
        """Install raw (non-cumulative) per-bucket counts for label sets.

        Each entry is ``(labels, counts, sum, count)`` with
        ``len(counts) == len(buckets) + 1`` (the trailing slot is the
        implicit ``+inf`` bucket).  Used to rebuild a registry from a
        merged cross-process snapshot; existing samples for the same
        label set are added to, mirroring :meth:`merge`.
        """
        for labels, counts, total, n in entries:
            if len(counts) != len(self.buckets) + 1:
                raise ValueError(
                    f"histogram {self.name!r}: {len(counts)} counts for "
                    f"{len(self.buckets) + 1} buckets"
                )
            key = _label_key(labels)
            s = self._samples.get(key)
            if s is None:
                s = self._samples[key] = _HistSample(len(self.buckets) + 1)
            for i, c in enumerate(counts):
                s.counts[i] += int(c)
            s.sum += float(total)
            s.count += int(n)

    def reset(self) -> None:
        self._samples.clear()


class MetricsRegistry:
    """Named collection of metrics for one run (or one shared scope).

    ``counter``/``gauge``/``histogram`` get-or-create by name, so
    instrumentation sites do not need to coordinate declaration order.
    Re-requesting a name with a different metric type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls: type, name: str, **kwargs: Any) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, requested {cls.kind}"
                )
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help, unit=unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help, unit=unit)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
        unit: str = "",
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, buckets=buckets, help=help, unit=unit
        )

    # ------------------------------------------------------------------
    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics[n] for n in self.names())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump of every metric family and its samples."""
        return {name: self._metrics[name].describe() for name in self.names()}

    def reset(self) -> None:
        """Zero every sample but keep the metric definitions (per-run reset)."""
        for metric in self._metrics.values():
            metric.reset()
