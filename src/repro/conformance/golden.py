"""Golden-trace capture and replay.

A **golden trace** is a canonical, version-stamped record of everything
a run promises to keep stable: the traced event stream (PS
transmissions, fragment merges, beacon periods, crashes), a per-round
digest of the phase vector after every avalanche instant, the fragment
merge sequence, the per-kind message bill and the result record — plus
a SHA-256 content hash over the canonical serialization of all of it.

Capture runs an algorithm under a private observability bundle with
per-event trace retention and a kernel ``phase_hook``; replay rebuilds
the configuration stamped into the golden, captures a fresh run and
reports the **first diverging round/event** (see
:func:`repro.conformance.report.first_divergence`) instead of a bare
hash mismatch.

Hardware PCO validation does exactly this against recorded reference
traces (Brandner et al.); here it is the regression gate that keeps the
sparse path bitwise-identical to dense and faulty runs bitwise
reproducible while the kernels keep getting faster.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.conformance.canonical import (
    combine_hashes,
    content_hash,
    hash_array,
    to_jsonable,
)
from repro.conformance.report import Divergence, first_divergence
from repro.core.config import PaperConfig
from repro.core.fst import FSTSimulation
from repro.core.network import D2DNetwork
from repro.core.pulsesync import PulseSyncKernel, SparsePulseSyncKernel
from repro.core.st import STSimulation
from repro.faults.plan import FaultConfig, FaultPlan
from repro.obs import Observability
from repro.oscillator.prc import LinearPRC

#: Golden file format version; bump on any incompatible schema change.
GOLDEN_SCHEMA = "repro.conformance/1"

#: Algorithms the capture layer knows how to drive.
ALGORITHMS = ("st", "fst", "pulsesync")

#: Event streams longer than this are elided from the stored golden
#: (counts + stream hash are always kept, so divergence detection still
#: works — only per-event pinpointing degrades to per-category counts).
MAX_GOLDEN_EVENTS = 5000


# ----------------------------------------------------------------------
# config stamping
# ----------------------------------------------------------------------
def config_summary(config: PaperConfig) -> dict[str, Any]:
    """The constructor facts a golden needs to rebuild its config."""
    faults = config.faults
    return {
        "n_devices": config.n_devices,
        "area_side_m": config.area_side_m,
        "seed": config.seed,
        "backend": config.backend,
        "resolved_backend": config.resolved_backend,
        "faults": faults.to_spec() if faults is not None else None,
    }


def config_from_summary(summary: dict[str, Any]) -> PaperConfig:
    """Rebuild the capture config from a golden's ``config`` stamp."""
    faults = summary.get("faults")
    return PaperConfig(
        n_devices=int(summary["n_devices"]),
        area_side_m=float(summary["area_side_m"]),
        seed=int(summary["seed"]),
        backend=summary["backend"],
        faults=FaultConfig.from_spec(faults) if faults else None,
    )


# ----------------------------------------------------------------------
# the golden record
# ----------------------------------------------------------------------
@dataclass
class GoldenTrace:
    """One captured run in canonical form (see module docstring)."""

    name: str
    algorithm: str
    config: dict[str, Any]
    result: dict[str, Any]
    bill: dict[str, int]
    events: list[list[Any]] | None
    events_elided: bool
    event_counts: dict[str, int]
    event_hash: str
    phase_rounds: list[str]
    phase_stream_hash: str
    merges: list[list[int]]
    schema: str = GOLDEN_SCHEMA
    content_hash: str = field(default="")

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}"
            )
        if not self.content_hash:
            self.content_hash = content_hash(self.doc(include_hash=False))

    # ------------------------------------------------------------------
    def doc(self, include_hash: bool = True) -> dict[str, Any]:
        """JSON-safe document form (canonicalized builtins)."""
        doc = to_jsonable(
            {
                "schema": self.schema,
                "name": self.name,
                "algorithm": self.algorithm,
                "config": self.config,
                "result": self.result,
                "bill": self.bill,
                "events": self.events,
                "events_elided": self.events_elided,
                "event_counts": self.event_counts,
                "event_hash": self.event_hash,
                "phase_rounds": self.phase_rounds,
                "phase_stream_hash": self.phase_stream_hash,
                "merges": self.merges,
            }
        )
        if include_hash:
            doc["content_hash"] = self.content_hash
        return doc

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "GoldenTrace":
        if doc.get("schema") != GOLDEN_SCHEMA:
            raise ValueError(
                f"unsupported golden schema {doc.get('schema')!r} "
                f"(expected {GOLDEN_SCHEMA})"
            )
        return cls(
            name=doc["name"],
            algorithm=doc["algorithm"],
            config=doc["config"],
            result=doc["result"],
            bill=doc["bill"],
            events=doc.get("events"),
            events_elided=bool(doc.get("events_elided", False)),
            event_counts=doc.get("event_counts", {}),
            event_hash=doc.get("event_hash", ""),
            phase_rounds=doc.get("phase_rounds", []),
            phase_stream_hash=doc.get("phase_stream_hash", ""),
            merges=doc.get("merges", []),
            content_hash=doc.get("content_hash", ""),
        )

    # ------------------------------------------------------------------
    def integrity_ok(self) -> bool:
        """True iff the stored content hash matches the payload.

        A False return means the golden *file* was edited or corrupted
        (as opposed to the code under test diverging from it).
        """
        return self.content_hash == content_hash(self.doc(include_hash=False))

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        p = pathlib.Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(self.doc(), sort_keys=True, indent=1) + "\n")
        return p

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "GoldenTrace":
        return cls.from_doc(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
def _pulsesync_capture(
    net: D2DNetwork, obs: Observability, phase_hook
) -> tuple[dict[str, Any], dict[str, int]]:
    """Run the bare sync kernel over the proximity mesh (no discovery)."""
    cfg = net.config
    prc = LinearPRC.from_dissipation(cfg.dissipation, cfg.epsilon)
    opts = dict(
        period_ms=cfg.period_ms,
        threshold_dbm=cfg.threshold_dbm,
        refractory_ms=cfg.refractory_ms,
        sync_window_ms=cfg.sync_window_ms,
        collision_policy=cfg.collision_policy,
    )
    if net.is_sparse:
        from repro.core.batch import BatchPulseSyncKernel

        budget = net.sparse_budget
        kernel_cls = BatchPulseSyncKernel if net.is_batch else SparsePulseSyncKernel
        kernel = kernel_cls(
            budget.link_indptr,
            budget.link_indices,
            budget.link_power_dbm,
            prc,
            fading=budget.fading,
            **opts,
        )
    else:
        kernel = PulseSyncKernel(
            net.link_budget.mean_rx_dbm,
            net.adjacency,
            prc,
            fading=net.link_budget.fading,
            **opts,
        )
    res = kernel.run(
        net.streams.stream("pulsesync"),
        max_time_ms=cfg.max_time_ms,
        require_sync=True,
        obs=obs,
        obs_labels={"algorithm": "pulsesync", "stage": "sync"},
        faults=FaultPlan.from_config(cfg),
        phase_hook=phase_hook,
    )
    result = {
        "converged": res.converged,
        "time_ms": res.time_ms,
        "messages": res.messages,
        "fires": res.fires,
        "instants": res.instants,
        "final_spread_ms": res.final_spread_ms,
        "sync_time_ms": res.sync_time_ms,
    }
    bill = obs.account_messages(
        "pulsesync", {"sync_pulse": (res.messages, "rach1")}
    )
    return result, bill


def capture_run(
    config: PaperConfig,
    algorithm: str,
    *,
    name: str | None = None,
    max_events: int | None = MAX_GOLDEN_EVENTS,
) -> GoldenTrace:
    """Execute one run and return its golden-trace record.

    The run executes under a fresh private
    :class:`~repro.obs.Observability` bundle with trace retention and a
    kernel phase hook — both pure observation, so a captured run is
    bitwise the run an uninstrumented caller would get.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"algorithm must be one of {ALGORITHMS}, got {algorithm!r}"
        )
    obs = Observability(keep_trace=True)
    phase_rounds: list[str] = []

    def phase_hook(_instant: int, _t: float, phases) -> None:
        phase_rounds.append(hash_array(phases))

    net = D2DNetwork(config)
    if algorithm == "pulsesync":
        result, bill = _pulsesync_capture(net, obs, phase_hook)
    else:
        sim_cls = STSimulation if algorithm == "st" else FSTSimulation
        run = sim_cls(net, obs=obs, phase_hook=phase_hook).run()
        result = {
            "converged": run.converged,
            "time_ms": run.time_ms,
            "messages": run.messages,
            "tree_edges": [list(e) for e in run.tree_edges],
            "extra": dict(run.extra),
        }
        bill = dict(run.message_breakdown)

    records = obs.trace.records()
    events = [[r.time, r.category, dict(sorted(r.data.items()))] for r in records]
    event_counts = {c: obs.trace.count(c) for c in obs.trace.categories}
    ev_hash = content_hash(events)
    merges = [
        [int(r["u"]), int(r["v"]), int(r["phase"])]
        for r in records
        if r.category == "merge"
    ]
    elide = max_events is not None and len(events) > max_events
    return GoldenTrace(
        name=name or default_name(config, algorithm),
        algorithm=algorithm,
        config=config_summary(config),
        result=result,
        bill=bill,
        events=None if elide else events,
        events_elided=elide,
        event_counts=event_counts,
        event_hash=ev_hash,
        phase_rounds=phase_rounds,
        phase_stream_hash=combine_hashes(phase_rounds),
        merges=merges,
    )


def default_name(config: PaperConfig, algorithm: str) -> str:
    """Corpus naming convention: ``{algo}-{backend}-{clean|faulted}-n{n}``."""
    faulted = config.faults is not None and config.faults.active
    return (
        f"{algorithm}-{config.resolved_backend}-"
        f"{'faulted' if faulted else 'clean'}-n{config.n_devices}"
    )


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def replay(
    golden: GoldenTrace, *, backend: str | None = None
) -> tuple[GoldenTrace, Divergence | None]:
    """Re-execute a golden's run and locate the first divergence.

    ``backend`` overrides the stamped execution backend — replaying a
    dense golden on the sparse backend (or vice versa) is the
    cross-backend conformance check, valid because every stream draw and
    fault decision is backend-invariant by construction.

    Goldens whose config stamp carries a ``tiles`` key are sharded
    captures and dispatch to
    :func:`repro.shard.conformance.replay_city`.
    """
    if "tiles" in golden.config:
        from repro.shard.conformance import replay_city

        return replay_city(golden, backend=backend)
    config = config_from_summary(golden.config)
    if backend is not None:
        config = config.replace(backend=backend)
    # same elision policy as record, so identical runs yield identical docs
    fresh = capture_run(config, golden.algorithm, name=golden.name)
    div = first_divergence(
        golden.doc(), fresh.doc(), pair=f"golden-vs-run:{golden.name}"
    )
    return fresh, div
