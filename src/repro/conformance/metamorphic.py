"""Metamorphic relation registry.

A metamorphic relation transforms a run's *input* in a way whose effect
on the *output* is known a priori, then checks the implementation honors
it — no oracle needed.  Each relation here takes a
:class:`~repro.core.config.PaperConfig` and returns ``None`` (holds) or
a :class:`~repro.conformance.report.Divergence` naming the first point
where it broke.

Registered relations:

``node_relabeling``
    Permuting node labels permutes the spanning tree: Borůvka and GHS
    on a relabelled weight matrix must return the isomorphic edge set
    with identical total weight and per-kind message counts.
``seed_translation``
    Structure-only outputs (bill kinds, event categories, convergence,
    tree size) must not depend on which seed drew the deployment.
``ps_weight_monotonicity``
    Co-shifting ``tx_power_dbm`` and ``threshold_dbm`` by +δ shifts
    every link weight by δ while leaving adjacency untouched — the tree
    edges must be unchanged and the tree weight must move by exactly
    (|edges|)·δ.
``fault_inactivity``
    An all-zero fault plan must be a bitwise no-op (delegates to the
    clean-vs-inactive differential runner).
``backend_invariance``
    Dense, sparse and batch execution are the identity transformation on
    the captured behaviour (delegates to the dense-vs-sparse and
    sparse-vs-batch runners).

The registry is consumed both by ``pytest`` parametrizations
(``tests/test_conformance_metamorphic.py``) and by the
``repro conformance run`` CLI.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.conformance.differential import (
    diff_backends,
    diff_backends_batch,
    diff_fault_noop,
)
from repro.conformance.golden import capture_run
from repro.conformance.report import Divergence
from repro.core.config import PaperConfig
from repro.core.network import D2DNetwork
from repro.obs import Observability, get_active
from repro.spanningtree.boruvka import distributed_boruvka
from repro.spanningtree.ghs import distributed_ghs
from repro.spanningtree.mst import maximum_spanning_tree, tree_weight

RelationFn = Callable[[PaperConfig], "Divergence | None"]

#: Seed offset used by the seed-translation relation.
SEED_SHIFT = 1000

#: dB co-shift applied by the monotonicity relation.
POWER_SHIFT_DB = 7.0


def _sorted_edges(edges) -> list[tuple[int, int]]:
    return sorted((min(u, v), max(u, v)) for u, v in edges)


# ----------------------------------------------------------------------
# node relabeling — permutation equivariance of the tree constructions
# ----------------------------------------------------------------------
def relation_node_relabeling(config: PaperConfig) -> Divergence | None:
    """π(tree(W)) == tree(π(W)) for Borůvka and GHS.

    The permutation is drawn deterministically from the config seed; the
    relabelled run must produce the isomorphic edge set, the same total
    weight and the same per-kind message bill (degree sequences and
    fragment structure are label-independent).
    """
    pair = "metamorphic:node_relabeling"
    net = D2DNetwork(config.replace(backend="dense"))
    w, adj = net.weights, net.adjacency
    n = net.n
    perm = np.random.default_rng(config.seed + 7919).permutation(n)
    w_p = w[np.ix_(perm, perm)]
    adj_p = adj[np.ix_(perm, perm)]
    for label, run in (
        ("boruvka", lambda m, a: distributed_boruvka(m, a)),
        ("ghs", lambda m, a: distributed_ghs(m, a)),
    ):
        base = run(w, adj)
        rel = run(w_p, adj_p)
        base_edges = _sorted_edges(base.edges)
        # edge (i, j) in the relabelled graph is (perm[i], perm[j]) here
        mapped = _sorted_edges((perm[u], perm[v]) for u, v in rel.edges)
        if mapped != base_edges:
            i = next(
                (
                    k
                    for k, (x, y) in enumerate(zip(base_edges, mapped))
                    if x != y
                ),
                min(len(base_edges), len(mapped)),
            )
            return Divergence(
                pair=pair,
                kind="tree",
                location=f"{label}.tree_edge[{i}]",
                round=i,
                expected=base_edges[i] if i < len(base_edges) else "<end>",
                actual=mapped[i] if i < len(mapped) else "<end>",
                context={"algorithm": label},
            )
        w_base = tree_weight(w, base_edges)
        w_rel = tree_weight(w_p, rel.edges)
        if abs(w_base - w_rel) > 1e-9 * max(1.0, abs(w_base)):
            return Divergence(
                pair=pair,
                kind="tree",
                location=f"{label}.tree_weight",
                expected=w_base,
                actual=w_rel,
                context={"algorithm": label},
            )
        # Borůvka's bill is per-kind label-invariant.  GHS is not even
        # total-invariant: which fragment initiates a connect and how
        # many waiting rounds elapse are label-order choices, so for GHS
        # the relation covers the tree and its weight only.
        if label == "boruvka" and base.counter.as_dict() != rel.counter.as_dict():
            return Divergence(
                pair=pair,
                kind="bill",
                location=f"{label}.messages",
                expected=base.counter.as_dict(),
                actual=rel.counter.as_dict(),
                context={"algorithm": label},
            )
    return None


# ----------------------------------------------------------------------
# seed translation — structure-only outputs are seed-independent
# ----------------------------------------------------------------------
def _structure(doc: dict[str, Any]) -> dict[str, Any]:
    """The structural skeleton of a capture doc (values, not streams)."""
    result = doc.get("result", {})
    skeleton: dict[str, Any] = {
        "bill_kinds": sorted(doc.get("bill", {})),
        "event_categories": sorted(doc.get("event_counts", {})),
        "converged": result.get("converged"),
        "result_keys": sorted(result),
    }
    if "tree_edges" in result:
        skeleton["tree_size"] = len(result["tree_edges"])
    return skeleton


def relation_seed_translation(config: PaperConfig) -> Divergence | None:
    """Shifting the seed redraws the deployment, not the structure.

    Convergence, the set of billed message kinds, the set of traced
    event categories and the tree size (n-1 for a converged run) are
    functions of the algorithm and topology regime, not of which seed
    happened to draw the positions.
    """
    pair = "metamorphic:seed_translation"
    shifted = config.replace(seed=config.seed + SEED_SHIFT)
    for algorithm in ("st", "fst"):
        a = _structure(capture_run(config, algorithm).doc())
        b = _structure(capture_run(shifted, algorithm).doc())
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                return Divergence(
                    pair=pair,
                    kind="result",
                    location=f"{algorithm}.{key}",
                    expected=a.get(key, "<missing>"),
                    actual=b.get(key, "<missing>"),
                    context={"seed": config.seed, "shifted_seed": shifted.seed},
                )
    return None


# ----------------------------------------------------------------------
# PS-weight monotonicity — dB co-shift moves weights, not structure
# ----------------------------------------------------------------------
def relation_ps_weight_monotonicity(config: PaperConfig) -> Divergence | None:
    """+δ on tx power and threshold shifts every weight by exactly δ.

    The link margin ``rx - threshold`` is invariant under the co-shift,
    so adjacency and the (unique) maximum spanning tree's edge set must
    be unchanged while the tree weight moves by |edges|·δ — the
    monotone response the PS weighting promises under a uniform gain
    change.
    """
    pair = "metamorphic:ps_weight_monotonicity"
    delta = POWER_SHIFT_DB
    base_net = D2DNetwork(config.replace(backend="dense"))
    shifted_net = D2DNetwork(
        config.replace(
            backend="dense",
            tx_power_dbm=config.tx_power_dbm + delta,
            threshold_dbm=config.threshold_dbm + delta,
        )
    )
    if not np.array_equal(base_net.adjacency, shifted_net.adjacency):
        diff = np.argwhere(base_net.adjacency != shifted_net.adjacency)
        u, v = (int(x) for x in diff[0])
        return Divergence(
            pair=pair,
            kind="tree",
            location=f"adjacency[{u},{v}]",
            expected=bool(base_net.adjacency[u, v]),
            actual=bool(shifted_net.adjacency[u, v]),
            context={"delta_db": delta},
        )
    base_tree = maximum_spanning_tree(base_net.weights, base_net.adjacency)
    shifted_tree = maximum_spanning_tree(
        shifted_net.weights, shifted_net.adjacency
    )
    if base_tree != shifted_tree:
        i = next(
            (k for k, (x, y) in enumerate(zip(base_tree, shifted_tree)) if x != y),
            min(len(base_tree), len(shifted_tree)),
        )
        return Divergence(
            pair=pair,
            kind="tree",
            location=f"tree_edge[{i}]",
            round=i,
            expected=base_tree[i] if i < len(base_tree) else "<end>",
            actual=shifted_tree[i] if i < len(shifted_tree) else "<end>",
            context={"delta_db": delta},
        )
    w_base = tree_weight(base_net.weights, base_tree)
    w_shift = tree_weight(shifted_net.weights, shifted_tree)
    expected = w_base + len(base_tree) * delta
    if abs(w_shift - expected) > 1e-6 * max(1.0, abs(expected)):
        return Divergence(
            pair=pair,
            kind="tree",
            location="tree_weight",
            expected=expected,
            actual=w_shift,
            context={"delta_db": delta, "edges": len(base_tree)},
        )
    return None


# ----------------------------------------------------------------------
# delegated relations
# ----------------------------------------------------------------------
def relation_fault_inactivity(config: PaperConfig) -> Divergence | None:
    """An inactive fault plan perturbs nothing (bitwise)."""
    return diff_fault_noop(config).divergence


def relation_backend_invariance(config: PaperConfig) -> Divergence | None:
    """Dense, sparse and batch execution capture identically."""
    div = diff_backends(config).divergence
    if div is not None:
        return div
    return diff_backends_batch(config).divergence


#: Name → relation; consumed by pytest parametrization and the CLI.
METAMORPHIC_RELATIONS: dict[str, RelationFn] = {
    "node_relabeling": relation_node_relabeling,
    "seed_translation": relation_seed_translation,
    "ps_weight_monotonicity": relation_ps_weight_monotonicity,
    "fault_inactivity": relation_fault_inactivity,
    "backend_invariance": relation_backend_invariance,
}


def run_relations(
    config: PaperConfig, names: tuple[str, ...] | None = None
) -> list[tuple[str, Divergence | None]]:
    """Evaluate the named relations (all when None) against one config."""
    obs = get_active() or Observability()
    outcomes: list[tuple[str, Divergence | None]] = []
    for name in names or tuple(METAMORPHIC_RELATIONS):
        if name not in METAMORPHIC_RELATIONS:
            valid = ", ".join(sorted(METAMORPHIC_RELATIONS))
            raise KeyError(f"unknown relation {name!r}; valid: {valid}, all")
        with obs.span("conformance_relation", relation=name):
            div = METAMORPHIC_RELATIONS[name](config)
        obs.metrics.counter(
            "conformance_checks_total",
            help="paired-pipeline and golden-replay conformance checks",
            unit="checks",
        ).inc(
            pair=f"metamorphic:{name}",
            outcome="diverged" if div is not None else "ok",
        )
        if div is not None:
            obs.metrics.counter(
                "conformance_divergences_total",
                help="conformance checks whose pipelines disagreed",
                unit="divergences",
            ).inc(pair=f"metamorphic:{name}", kind=div.kind)
        outcomes.append((name, div))
    return outcomes
