"""Conformance subsystem: golden traces, differential runners, relations.

Three complementary oracles over the same capture format:

- :mod:`repro.conformance.golden` — record a run's canonical trace
  (events, per-round phase digests, merges, bill, result) and replay it
  later, reporting the first diverging round/event.
- :mod:`repro.conformance.differential` — run one ``(config, seed)``
  through paired pipelines that must agree (dense/sparse, clean/noop
  faults, distributed/centralized MST, sorted/naive FFA).
- :mod:`repro.conformance.metamorphic` — input transformations with
  known output effects (relabeling, seed translation, dB co-shift,
  fault inactivity, backend invariance).

The committed corpus lives in ``tests/goldens/`` and is managed by
:mod:`repro.conformance.corpus`; the ``repro conformance`` CLI wraps
all of it.  See ``docs/testing.md``.
"""

from repro.conformance.canonical import (
    canonical_json,
    content_hash,
    from_jsonable,
    hash_array,
    to_jsonable,
)
from repro.conformance.corpus import (
    CORPUS_FAULT_SPEC,
    corpus_specs,
    load_bills,
    load_corpus,
    record_corpus,
    verify_corpus,
)
from repro.conformance.differential import (
    DIFF_PAIRS,
    DiffOutcome,
    diff_backends,
    diff_boruvka_oracle,
    diff_fault_noop,
    diff_ffa,
    run_pairs,
)
from repro.conformance.golden import (
    ALGORITHMS,
    GOLDEN_SCHEMA,
    GoldenTrace,
    capture_run,
    config_from_summary,
    config_summary,
    default_name,
    replay,
)
from repro.conformance.metamorphic import (
    METAMORPHIC_RELATIONS,
    run_relations,
)
from repro.conformance.report import (
    Divergence,
    first_divergence,
    payload_hash,
    render_summary,
)

__all__ = [
    "ALGORITHMS",
    "CORPUS_FAULT_SPEC",
    "DIFF_PAIRS",
    "DiffOutcome",
    "Divergence",
    "GOLDEN_SCHEMA",
    "GoldenTrace",
    "METAMORPHIC_RELATIONS",
    "canonical_json",
    "capture_run",
    "config_from_summary",
    "config_summary",
    "content_hash",
    "corpus_specs",
    "default_name",
    "diff_backends",
    "diff_boruvka_oracle",
    "diff_fault_noop",
    "diff_ffa",
    "first_divergence",
    "from_jsonable",
    "hash_array",
    "load_bills",
    "load_corpus",
    "payload_hash",
    "record_corpus",
    "render_summary",
    "replay",
    "run_pairs",
    "run_relations",
    "to_jsonable",
    "verify_corpus",
]
