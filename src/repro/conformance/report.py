"""Divergence objects and human-readable conformance reports.

The conformance layer never fails with a bare assert: every comparison
between two captured runs (golden vs fresh, dense vs sparse, clean vs
inactive-faults, ...) produces either ``None`` or a :class:`Divergence`
that names the **first** diverging round/event, what was expected and
what actually happened — the difference between "parity broke" and a
bisectable bug report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.conformance.canonical import content_hash, to_jsonable

#: Sections that describe what the run *did* (vs how it was labelled);
#: the closing safety-net hash covers exactly these, so pairs whose
#: ``config``/``name`` stamps legitimately differ (dense-vs-sparse,
#: clean-vs-inactive-faults) compare clean when the dynamics match.
PAYLOAD_KEYS = (
    "events",
    "events_elided",
    "event_counts",
    "event_hash",
    "phase_rounds",
    "phase_stream_hash",
    "merges",
    "bill",
    "result",
)


def payload_hash(doc: dict[str, Any]) -> str:
    """Content hash over the behavioural sections of a capture doc."""
    return content_hash({k: doc.get(k) for k in PAYLOAD_KEYS})


@dataclass(frozen=True)
class Divergence:
    """First point where two captured runs disagree.

    Attributes
    ----------
    pair:
        What was compared, e.g. ``"golden-vs-run"`` or
        ``"dense-vs-sparse"``.
    kind:
        Which section diverged first: ``event``, ``event_counts``,
        ``phase_round``, ``merge``, ``bill``, ``result``, ``tree``,
        ``history`` or ``content``.
    location:
        Human-oriented pointer, e.g. ``event[37]`` or ``bill['repair']``.
    round:
        Ordinal of the diverging round/event in its stream, when the
        section is ordered (event index, phase-round index, merge index,
        FFA iteration); ``None`` for keyed sections.
    time_ms:
        Simulated time of the diverging event when known.
    expected / actual:
        The two sides' values at the divergence point (canonicalized).
    """

    pair: str
    kind: str
    location: str
    round: int | None = None
    time_ms: float | None = None
    expected: Any = None
    actual: Any = None
    context: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Multi-line human-readable report of this divergence."""
        lines = [f"DIVERGENCE [{self.pair}] first at {self.location}"]
        if self.round is not None:
            lines.append(f"  round/event : {self.round}")
        if self.time_ms is not None:
            lines.append(f"  sim time    : {self.time_ms:.3f} ms")
        lines.append(f"  section     : {self.kind}")
        lines.append(f"  expected    : {_short(self.expected)}")
        lines.append(f"  actual      : {_short(self.actual)}")
        for key, value in sorted(self.context.items()):
            lines.append(f"  {key:<12}: {_short(value)}")
        return "\n".join(lines)


def _short(value: Any, limit: int = 160) -> str:
    text = repr(to_jsonable(value))
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _canon(value: Any) -> Any:
    """Comparison form: canonical builtins with tagged non-finite floats."""
    return to_jsonable(value)


# ----------------------------------------------------------------------
# capture-document comparison
# ----------------------------------------------------------------------
def first_divergence(
    golden: dict[str, Any], other: dict[str, Any], pair: str = "golden-vs-run"
) -> Divergence | None:
    """Compare two capture documents; return the first divergence or None.

    Sections are checked in causal order — event stream, per-round phase
    digests, fragment merges, message bill, result record — so the
    reported divergence is the earliest observable symptom, not a
    downstream consequence of it.
    """
    for check in (
        _diff_events,
        _diff_phase_rounds,
        _diff_merges,
        _diff_bill,
        _diff_result,
    ):
        div = check(golden, other, pair)
        if div is not None:
            return div
    ha, hb = payload_hash(golden), payload_hash(other)
    if ha != hb:
        return Divergence(
            pair=pair,
            kind="content",
            location="payload_hash",
            expected=ha,
            actual=hb,
            context={"note": "sections equal individually; hash safety net"},
        )
    return None


def _event_time(event: Any) -> float | None:
    try:
        t = event[0]
        return float(t) if isinstance(t, (int, float)) else None
    except (TypeError, IndexError):
        return None


def _diff_events(a: dict, b: dict, pair: str) -> Divergence | None:
    ev_a, ev_b = a.get("events"), b.get("events")
    if a.get("events_elided") or b.get("events_elided") or ev_a is None or ev_b is None:
        # digest-only comparison: per-category counts, then the stream hash
        counts_a = a.get("event_counts", {})
        counts_b = b.get("event_counts", {})
        for cat in sorted(set(counts_a) | set(counts_b)):
            if counts_a.get(cat, 0) != counts_b.get(cat, 0):
                return Divergence(
                    pair=pair,
                    kind="event_counts",
                    location=f"event_counts[{cat!r}]",
                    expected=counts_a.get(cat, 0),
                    actual=counts_b.get(cat, 0),
                    context={"note": "events elided; counts compared"},
                )
        if a.get("event_hash") != b.get("event_hash"):
            return Divergence(
                pair=pair,
                kind="event",
                location="event_hash",
                expected=a.get("event_hash"),
                actual=b.get("event_hash"),
                context={"note": "events elided; stream hash compared"},
            )
        return None
    ca, cb = _canon(ev_a), _canon(ev_b)
    for i, (ea, eb) in enumerate(zip(ca, cb)):
        if ea != eb:
            return Divergence(
                pair=pair,
                kind="event",
                location=f"event[{i}]",
                round=i,
                time_ms=_event_time(ea),
                expected=ea,
                actual=eb,
                context=_causal_context(ca, i),
            )
    if len(ca) != len(cb):
        i = min(len(ca), len(cb))
        longer = ca if len(ca) > len(cb) else cb
        return Divergence(
            pair=pair,
            kind="event",
            location=f"event[{i}]",
            round=i,
            time_ms=_event_time(longer[i]),
            expected=ca[i] if i < len(ca) else "<end of stream>",
            actual=cb[i] if i < len(cb) else "<end of stream>",
            context=_causal_context(longer, i),
        )
    return None


def _causal_context(events: list, index: int) -> dict[str, Any]:
    """Lamport clock + participants of the diverging event (cold path:
    computed only once a divergence already exists, so the comparison
    fast path and the golden capture format stay untouched)."""
    from repro.obs.causal import lamport_context

    try:
        return lamport_context(events, index)
    except Exception:  # never let diagnostics mask the divergence itself
        return {}


def _diff_phase_rounds(a: dict, b: dict, pair: str) -> Divergence | None:
    pa = a.get("phase_rounds", [])
    pb = b.get("phase_rounds", [])
    for i, (ha, hb) in enumerate(zip(pa, pb)):
        if ha != hb:
            return Divergence(
                pair=pair,
                kind="phase_round",
                location=f"phase_round[{i}]",
                round=i,
                expected=ha,
                actual=hb,
            )
    if len(pa) != len(pb):
        i = min(len(pa), len(pb))
        return Divergence(
            pair=pair,
            kind="phase_round",
            location=f"phase_round[{i}]",
            round=i,
            expected=pa[i] if i < len(pa) else "<end of rounds>",
            actual=pb[i] if i < len(pb) else "<end of rounds>",
        )
    return None


def _diff_merges(a: dict, b: dict, pair: str) -> Divergence | None:
    ma = _canon(a.get("merges", []))
    mb = _canon(b.get("merges", []))
    for i, (ea, eb) in enumerate(zip(ma, mb)):
        if ea != eb:
            return Divergence(
                pair=pair,
                kind="merge",
                location=f"merge[{i}]",
                round=i,
                expected=ea,
                actual=eb,
            )
    if len(ma) != len(mb):
        i = min(len(ma), len(mb))
        return Divergence(
            pair=pair,
            kind="merge",
            location=f"merge[{i}]",
            round=i,
            expected=ma[i] if i < len(ma) else "<end of merges>",
            actual=mb[i] if i < len(mb) else "<end of merges>",
        )
    return None


def _diff_bill(a: dict, b: dict, pair: str) -> Divergence | None:
    ba = a.get("bill", {})
    bb = b.get("bill", {})
    for kind in sorted(set(ba) | set(bb)):
        if ba.get(kind) != bb.get(kind):
            return Divergence(
                pair=pair,
                kind="bill",
                location=f"bill[{kind!r}]",
                expected=ba.get(kind, "<missing>"),
                actual=bb.get(kind, "<missing>"),
            )
    return None


def _diff_result(a: dict, b: dict, pair: str) -> Divergence | None:
    ra = _canon(a.get("result", {}))
    rb = _canon(b.get("result", {}))
    for key in sorted(set(ra) | set(rb)):
        if ra.get(key) != rb.get(key):
            return Divergence(
                pair=pair,
                kind="result",
                location=f"result[{key!r}]",
                expected=ra.get(key, "<missing>"),
                actual=rb.get(key, "<missing>"),
            )
    return None


# ----------------------------------------------------------------------
# run summaries
# ----------------------------------------------------------------------
def render_summary(
    checks: list[tuple[str, Divergence | None]],
    *,
    title: str = "conformance",
) -> str:
    """Render a pass/fail table plus full reports for every divergence."""
    passed = sum(1 for _, div in checks if div is None)
    lines = [f"{title}: {passed}/{len(checks)} checks passed"]
    width = max((len(name) for name, _ in checks), default=0)
    for name, div in checks:
        status = "ok" if div is None else f"DIVERGED at {div.location}"
        lines.append(f"  {name:<{width}}  {status}")
    for name, div in checks:
        if div is not None:
            lines.append("")
            lines.append(div.describe())
    return "\n".join(lines)
