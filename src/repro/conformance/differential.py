"""Differential runners: paired pipelines that must agree.

Each runner executes the same ``(config, seed)`` through two pipelines
that the repo promises are equivalent and reports the **first diverging
round/event** (a :class:`~repro.conformance.report.Divergence`) rather
than a bare assert:

``backends``
    dense vs sparse execution of ST, FST and the bare sync kernel —
    PR 2's seed-for-seed bitwise parity promise.
``batch``
    sparse vs batch execution of the same trio — the vectorized
    whole-array kernels must replay the sparse dynamics bitwise.
``faults``
    clean run vs a run under an all-zero (inactive) fault plan — PR 3's
    "inactive plans perturb nothing" promise, normalized over the
    fault-only bookkeeping keys an active plan adds.
``boruvka``
    the distributed Borůvka construction (dense or CSR, per the
    configured backend) vs a centralized maximum-spanning-tree oracle —
    on distinct weights the MST is unique, so the edge lists must match
    exactly.
``shard``
    a 2×2 sharded city capture vs standalone single-region runs of each
    shard's equivalent config, plus pool-vs-inline byte equality — the
    sharding tier's replay-in-isolation and reassembly contracts
    (:func:`repro.shard.conformance.diff_shard`).
``ffa``
    sorted-FFA vs naive-FFA on the same objective and seed — both
    trajectories must be monotone non-increasing and land inside a
    quality-parity band, with the sorted variant spending strictly
    fewer comparisons (the paper's §V complexity claim).

Every runner records a ``conformance_checks_total`` /
``conformance_divergences_total`` counter pair and a
``conformance_diff`` span into the ambient observability bundle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.conformance.golden import capture_run
from repro.conformance.report import Divergence, first_divergence
from repro.core.config import PaperConfig
from repro.core.network import D2DNetwork
from repro.faults.plan import FaultConfig
from repro.firefly.fa import BasicFireflyAlgorithm, FAParams
from repro.firefly.fa_sorted import SortedFireflyAlgorithm
from repro.firefly.objectives import sphere
from repro.obs import Observability, get_active
from repro.spanningtree.boruvka import (
    distributed_boruvka,
    distributed_boruvka_batch,
    distributed_boruvka_csr,
)
from repro.spanningtree.mst import maximum_spanning_tree, tree_weight

#: Keys an *active-capable* fault plan adds to bills/extras even when it
#: never fires; stripped before the clean-vs-inactive comparison.
_FAULT_BOOKKEEPING_EXTRA = (
    "repairs",
    "crashed",
    "discovery_retries",
    "faults_injected",
)

#: Quality-parity band for the FFA pair: sorted may trail basic by at
#: most this multiplicative factor (plus a small absolute floor) — the
#: variants share eq. (13) but not attractor choices, so trajectories
#: differ while end quality must stay comparable.
FFA_BAND_FACTOR = 10.0
FFA_BAND_ATOL = 1.0


@dataclass(frozen=True)
class DiffOutcome:
    """Result of one paired pipeline execution."""

    pair: str
    divergence: Divergence | None
    detail: str

    @property
    def ok(self) -> bool:
        return self.divergence is None


def _note(obs: Observability, pair: str, div: Divergence | None) -> None:
    obs.metrics.counter(
        "conformance_checks_total",
        help="paired-pipeline and golden-replay conformance checks",
        unit="checks",
    ).inc(pair=pair, outcome="diverged" if div is not None else "ok")
    if div is not None:
        obs.metrics.counter(
            "conformance_divergences_total",
            help="conformance checks whose pipelines disagreed",
            unit="divergences",
        ).inc(pair=pair, kind=div.kind)


# ----------------------------------------------------------------------
# dense vs sparse
# ----------------------------------------------------------------------
def diff_backends(
    config: PaperConfig, algorithms: tuple[str, ...] = ("st", "fst", "pulsesync")
) -> DiffOutcome:
    """Dense and sparse pipelines must produce identical captures."""
    obs = get_active() or Observability()
    with obs.span("conformance_diff", pair="dense-vs-sparse"):
        for algorithm in algorithms:
            dense = capture_run(config.replace(backend="dense"), algorithm)
            sparse = capture_run(config.replace(backend="sparse"), algorithm)
            div = first_divergence(
                dense.doc(), sparse.doc(), pair=f"dense-vs-sparse:{algorithm}"
            )
            if div is not None:
                _note(obs, "dense-vs-sparse", div)
                return DiffOutcome(
                    "dense-vs-sparse", div, f"{algorithm} diverged"
                )
    _note(obs, "dense-vs-sparse", None)
    return DiffOutcome(
        "dense-vs-sparse",
        None,
        f"{', '.join(algorithms)} identical at n={config.n_devices} "
        f"seed={config.seed}",
    )


# ----------------------------------------------------------------------
# sparse vs batch
# ----------------------------------------------------------------------
def diff_backends_batch(
    config: PaperConfig, algorithms: tuple[str, ...] = ("st", "fst", "pulsesync")
) -> DiffOutcome:
    """Sparse and batch pipelines must produce identical captures.

    The batch backend replaces per-cohort/per-fragment Python loops with
    whole-array kernels; channel draws and fault decisions stay
    counter-hashed, so every capture section (events, phase rounds,
    merges, bill, result) must match the sparse run bitwise.
    """
    obs = get_active() or Observability()
    with obs.span("conformance_diff", pair="sparse-vs-batch"):
        for algorithm in algorithms:
            sparse = capture_run(config.replace(backend="sparse"), algorithm)
            batch = capture_run(config.replace(backend="batch"), algorithm)
            div = first_divergence(
                sparse.doc(), batch.doc(), pair=f"sparse-vs-batch:{algorithm}"
            )
            if div is not None:
                _note(obs, "sparse-vs-batch", div)
                return DiffOutcome(
                    "sparse-vs-batch", div, f"{algorithm} diverged"
                )
    _note(obs, "sparse-vs-batch", None)
    return DiffOutcome(
        "sparse-vs-batch",
        None,
        f"{', '.join(algorithms)} identical at n={config.n_devices} "
        f"seed={config.seed}",
    )


# ----------------------------------------------------------------------
# clean vs inactive fault plan
# ----------------------------------------------------------------------
def _strip_fault_bookkeeping(doc: dict) -> dict:
    """Remove the bookkeeping a (possibly inactive) plan always adds."""
    doc = dict(doc)
    doc["bill"] = {
        k: v for k, v in doc.get("bill", {}).items() if k != "repair" or v
    }
    result = dict(doc.get("result", {}))
    if isinstance(result.get("extra"), dict):
        result["extra"] = {
            k: v
            for k, v in result["extra"].items()
            if k not in _FAULT_BOOKKEEPING_EXTRA
        }
    doc["result"] = result
    return doc


def diff_fault_noop(
    config: PaperConfig, algorithms: tuple[str, ...] = ("st", "fst", "pulsesync")
) -> DiffOutcome:
    """A run under an all-zero fault plan must be a bitwise no-op.

    The inactive plan adds zero-valued bookkeeping (a ``repair: 0`` bill
    line, fault counters in ``extra``); those keys are stripped before
    comparison — the *dynamics* (events, phase rounds, merges, timing,
    message counts) must match exactly.
    """
    obs = get_active() or Observability()
    clean_cfg = config.replace(faults=None)
    noop_cfg = config.replace(faults=FaultConfig())
    with obs.span("conformance_diff", pair="clean-vs-inactive-faults"):
        for algorithm in algorithms:
            clean = capture_run(clean_cfg, algorithm)
            noop = capture_run(noop_cfg, algorithm)
            div = first_divergence(
                _strip_fault_bookkeeping(clean.doc()),
                _strip_fault_bookkeeping(noop.doc()),
                pair=f"clean-vs-inactive-faults:{algorithm}",
            )
            if div is not None:
                _note(obs, "clean-vs-inactive-faults", div)
                return DiffOutcome(
                    "clean-vs-inactive-faults", div, f"{algorithm} diverged"
                )
    _note(obs, "clean-vs-inactive-faults", None)
    return DiffOutcome(
        "clean-vs-inactive-faults",
        None,
        f"inactive plan is a no-op for {', '.join(algorithms)}",
    )


# ----------------------------------------------------------------------
# distributed Borůvka vs centralized MST oracle
# ----------------------------------------------------------------------
def diff_boruvka_oracle(config: PaperConfig) -> DiffOutcome:
    """The distributed construction must equal the centralized MST.

    Shadowed link weights are distinct with probability 1, so the
    maximum spanning tree is unique and the distributed edge set must
    match the oracle's edge for edge.
    """
    obs = get_active() or Observability()
    pair = "boruvka-vs-oracle"
    with obs.span("conformance_diff", pair=pair):
        dense_net = D2DNetwork(config.replace(backend="dense"))
        if config.resolved_backend in ("sparse", "batch"):
            csr_fn = (
                distributed_boruvka_batch
                if config.resolved_backend == "batch"
                else distributed_boruvka_csr
            )
            sparse_net = D2DNetwork(
                config.replace(backend=config.resolved_backend)
            )
            budget = sparse_net.sparse_budget
            dist = csr_fn(
                sparse_net.n,
                budget.link_indptr,
                budget.link_indices,
                budget.link_power_dbm,
            )
        else:
            dist = distributed_boruvka(dense_net.weights, dense_net.adjacency)
        oracle = maximum_spanning_tree(dense_net.weights, dense_net.adjacency)
        dist_edges = sorted(
            (min(u, v), max(u, v)) for u, v in dist.edges
        )
        div = None
        for i, (got, want) in enumerate(zip(dist_edges, oracle)):
            if got != want:
                div = Divergence(
                    pair=pair,
                    kind="tree",
                    location=f"tree_edge[{i}]",
                    round=i,
                    expected=list(want),
                    actual=list(got),
                )
                break
        if div is None and len(dist_edges) != len(oracle):
            i = min(len(dist_edges), len(oracle))
            div = Divergence(
                pair=pair,
                kind="tree",
                location=f"tree_edge[{i}]",
                round=i,
                expected=list(oracle[i]) if i < len(oracle) else "<end>",
                actual=list(dist_edges[i]) if i < len(dist_edges) else "<end>",
            )
        if div is None:
            w_dist = tree_weight(dense_net.weights, dist_edges)
            w_oracle = tree_weight(dense_net.weights, oracle)
            if abs(w_dist - w_oracle) > 1e-9 * max(1.0, abs(w_oracle)):
                div = Divergence(
                    pair=pair,
                    kind="tree",
                    location="tree_weight",
                    expected=w_oracle,
                    actual=w_dist,
                )
        _note(obs, pair, div)
        detail = (
            f"{len(oracle)} oracle edges matched"
            if div is None
            else "distributed tree diverged from MST oracle"
        )
        return DiffOutcome(pair, div, detail)


# ----------------------------------------------------------------------
# sorted-FFA vs naive-FFA
# ----------------------------------------------------------------------
def diff_ffa(
    *,
    seed: int = 1,
    pop_size: int = 24,
    dim: int = 4,
    iterations: int = 40,
    objective: Callable = sphere,
    params: FAParams | None = None,
) -> DiffOutcome:
    """Sorted and naive FFA must stay inside the quality-parity band.

    Per-iteration invariant: both best-so-far histories are monotone
    non-increasing (first violating iteration is reported as the
    diverging round).  End-state: the sorted variant's best must lie
    within ``FFA_BAND_FACTOR ×`` the naive best (+ floor) and must have
    spent strictly fewer brightness comparisons.
    """
    obs = get_active() or Observability()
    pair = "sorted-vs-naive-ffa"
    with obs.span("conformance_diff", pair=pair):
        basic = BasicFireflyAlgorithm(
            objective, dim, pop_size, params=params,
            rng=np.random.default_rng(seed),
        ).run(iterations)
        fast = SortedFireflyAlgorithm(
            objective, dim, pop_size, params=params,
            rng=np.random.default_rng(seed),
        ).run(iterations)
        div = None
        for label, hist in (("naive", basic.history), ("sorted", fast.history)):
            for i in range(1, len(hist)):
                if hist[i] > hist[i - 1]:
                    div = Divergence(
                        pair=pair,
                        kind="history",
                        location=f"{label}_history[{i}]",
                        round=i,
                        expected=f"<= {hist[i - 1]!r}",
                        actual=hist[i],
                        context={"variant": label},
                    )
                    break
            if div is not None:
                break
        band = FFA_BAND_FACTOR * abs(basic.best_value) + FFA_BAND_ATOL
        if div is None and fast.best_value > basic.best_value + band:
            div = Divergence(
                pair=pair,
                kind="result",
                location="best_value",
                round=iterations,
                expected=f"<= {basic.best_value + band!r}",
                actual=fast.best_value,
                context={"naive_best": basic.best_value},
            )
        if div is None and fast.comparisons >= basic.comparisons:
            div = Divergence(
                pair=pair,
                kind="result",
                location="comparisons",
                expected=f"< {basic.comparisons}",
                actual=fast.comparisons,
            )
        _note(obs, pair, div)
        detail = (
            f"sorted {fast.comparisons} vs naive {basic.comparisons} "
            f"comparisons over {iterations} iterations"
        )
        return DiffOutcome(pair, div, detail)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def _run_backends(config: PaperConfig) -> DiffOutcome:
    return diff_backends(config)


def _run_batch(config: PaperConfig) -> DiffOutcome:
    return diff_backends_batch(config)


def _run_faults(config: PaperConfig) -> DiffOutcome:
    return diff_fault_noop(config)


def _run_boruvka(config: PaperConfig) -> DiffOutcome:
    return diff_boruvka_oracle(config)


def _run_ffa(config: PaperConfig) -> DiffOutcome:
    return diff_ffa(seed=config.seed)


def _run_shard(config: PaperConfig) -> DiffOutcome:
    # lazy: repro.shard.conformance imports back into this package
    from repro.shard.conformance import diff_shard

    return diff_shard(config)


def _run_service(config: PaperConfig) -> DiffOutcome:
    # lazy: repro.service.conformance imports back into this package
    from repro.service.conformance import diff_service

    return diff_service(config)


def _run_service_ops(config: PaperConfig) -> DiffOutcome:
    # lazy: repro.service.conformance imports back into this package
    from repro.service.conformance import diff_service_ops

    return diff_service_ops(config)


#: Named pairs for the CLI (``repro conformance diff <pair>``).
DIFF_PAIRS: dict[str, Callable[[PaperConfig], DiffOutcome]] = {
    "backends": _run_backends,
    "batch": _run_batch,
    "faults": _run_faults,
    "boruvka": _run_boruvka,
    "ffa": _run_ffa,
    "shard": _run_shard,
    "service": _run_service,
    "service-ops": _run_service_ops,
}


def run_pairs(
    config: PaperConfig, names: tuple[str, ...] | None = None
) -> list[DiffOutcome]:
    """Run the named pairs (all when None) against one config."""
    outcomes = []
    for name in names or tuple(DIFF_PAIRS):
        if name not in DIFF_PAIRS:
            valid = ", ".join(sorted(DIFF_PAIRS))
            raise KeyError(f"unknown diff pair {name!r}; valid: {valid}, all")
        outcomes.append(DIFF_PAIRS[name](config))
    return outcomes
