"""The committed golden corpus: enumeration, recording, verification.

The corpus spans the full conformance matrix —
``{st, fst, pulsesync} × {dense, sparse} × {clean, faulted}`` at
``n ∈ {8, 32, 128}`` — 36 goldens, every one converging in well under a
second so the whole corpus replays inside a CI job.

The faulted half uses one fixed plan (:data:`CORPUS_FAULT_SPEC`): lossy
beacons and PS pulses, a crash window wide enough to exercise repair,
and collision arbitration — each decision a pure function of event
identity, so faulted goldens replay bitwise on every backend (the
committed corpus stores dense and sparse captures; CI additionally
replays it under the forced ``batch`` backend).

Beside the 36 single-region goldens, the corpus records six **sharded
city goldens** (:func:`shard_corpus_specs`) —
``{st, fst, pulsesync} × 2×2 tiles × n ∈ {32, 128}`` — whose replay
re-runs the whole tile/halo pipeline (``docs/sharding.md``).
:func:`verify_corpus` covers both sets.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterator

from repro.conformance.golden import (
    GoldenTrace,
    capture_run,
    default_name,
    replay,
)
from repro.conformance.report import Divergence
from repro.core.config import PaperConfig
from repro.faults.plan import FaultConfig

#: Default location of the committed corpus, relative to the repo root.
GOLDENS_DIRNAME = "tests/goldens"

#: Fault plan shared by every faulted golden (see module docstring).
CORPUS_FAULT_SPEC = (
    "beacon_loss=0.05,ps_loss=0.02,crash=0.1,collision=0.1,crash_window_ms=3000"
)

#: Deployment seed shared by the whole corpus.
CORPUS_SEED = 1

CORPUS_SIZES = (8, 32, 128)
CORPUS_ALGORITHMS = ("st", "fst", "pulsesync")
CORPUS_BACKENDS = ("dense", "sparse")

#: Sharded corpus axis: every algorithm over a 2×2 tiling, clean, at
#: these city populations (see :func:`shard_corpus_specs`).
SHARD_CORPUS_SIZES = (32, 128)
SHARD_CORPUS_TILES = (2, 2)

#: Sizes whose ST/FST message bills are additionally pinned in
#: ``message_bills.json`` (the satellite regression fixture).
BILL_SIZES = (8, 32)
BILLS_FILENAME = "message_bills.json"


def corpus_specs() -> Iterator[tuple[str, PaperConfig, str]]:
    """Yield ``(name, config, algorithm)`` for every corpus golden."""
    for n in CORPUS_SIZES:
        for backend in CORPUS_BACKENDS:
            for faulted in (False, True):
                config = PaperConfig(
                    n_devices=n,
                    seed=CORPUS_SEED,
                    backend=backend,
                    faults=(
                        FaultConfig.from_spec(CORPUS_FAULT_SPEC)
                        if faulted
                        else None
                    ),
                )
                for algorithm in CORPUS_ALGORITHMS:
                    yield default_name(config, algorithm), config, algorithm


def shard_corpus_specs() -> Iterator[tuple[str, "object", str]]:
    """Yield ``(name, city_config, algorithm)`` for the sharded goldens.

    Kept separate from :func:`corpus_specs` — the single-region corpus
    is pinned at 36 entries; the sharded axis extends it without
    renumbering.  Import of the shard tier is lazy: this module is
    reachable from ``repro.conformance.__init__`` while
    ``repro.shard.conformance`` imports back into the golden layer.
    """
    from repro.shard.conformance import shard_default_name
    from repro.shard.tiling import CityConfig

    rows, cols = SHARD_CORPUS_TILES
    for n in SHARD_CORPUS_SIZES:
        city = CityConfig(
            PaperConfig(n_devices=n, seed=CORPUS_SEED), rows, cols
        )
        for algorithm in CORPUS_ALGORITHMS:
            yield shard_default_name(city, algorithm), city, algorithm


def golden_path(root: str | pathlib.Path, name: str) -> pathlib.Path:
    return pathlib.Path(root) / f"{name}.json"


def record_corpus(root: str | pathlib.Path) -> list[pathlib.Path]:
    """(Re)record every corpus golden plus the message-bill fixture.

    Returns the written paths.  Recording is the only sanctioned way to
    update goldens — hand-editing breaks the content hash and is flagged
    as corruption by :func:`verify_corpus`.
    """
    root = pathlib.Path(root)
    written: list[pathlib.Path] = []
    bills: dict[str, dict[str, int]] = {}
    for name, config, algorithm in corpus_specs():
        golden = capture_run(config, algorithm, name=name)
        written.append(golden.save(golden_path(root, name)))
        if algorithm in ("st", "fst") and config.n_devices in BILL_SIZES:
            bills[name] = dict(sorted(golden.bill.items()))
    from repro.shard.conformance import capture_city

    for name, city, algorithm in shard_corpus_specs():
        golden = capture_city(city, algorithm, name=name)
        written.append(golden.save(golden_path(root, name)))
    bills_path = root / BILLS_FILENAME
    bills_path.write_text(json.dumps(bills, sort_keys=True, indent=1) + "\n")
    written.append(bills_path)
    return written


def load_corpus(root: str | pathlib.Path) -> list[GoldenTrace]:
    """Load every committed corpus golden, in spec order."""
    return [
        GoldenTrace.load(golden_path(root, name))
        for name, _, _ in corpus_specs()
    ]


def verify_corpus(
    root: str | pathlib.Path, *, backend: str | None = None
) -> list[tuple[str, Divergence | None]]:
    """Replay every committed golden; return per-golden outcomes.

    ``backend`` overrides the stamped execution backend for every
    replay — running the corpus once per backend is the CI
    cross-backend gate.  A golden whose stored content hash no longer
    matches its payload (hand-edited / corrupted file) is still
    replayed, so the outcome names the first diverging round/event
    rather than a bare checksum failure; the corruption is recorded in
    the divergence context.
    """
    names = [name for name, _, _ in corpus_specs()]
    names += [name for name, _, _ in shard_corpus_specs()]
    return [(name, _verify_one(root, name, backend)) for name in names]


def _verify_one(
    root: pathlib.Path, name: str, backend: str | None
) -> Divergence | None:
    path = golden_path(root, name)
    if not path.exists():
        return Divergence(
            pair=f"golden-vs-run:{name}",
            kind="content",
            location=str(path),
            expected="golden file",
            actual="<missing>",
        )
    golden = GoldenTrace.load(path)
    corrupted = not golden.integrity_ok()
    _, div = replay(golden, backend=backend)
    if div is None and corrupted:
        div = Divergence(
            pair=f"golden-vs-run:{name}",
            kind="content",
            location="content_hash",
            expected=golden.content_hash,
            actual="<recomputed hash differs: golden file edited>",
        )
    elif div is not None and corrupted:
        div = Divergence(
            pair=div.pair,
            kind=div.kind,
            location=div.location,
            round=div.round,
            time_ms=div.time_ms,
            expected=div.expected,
            actual=div.actual,
            context={**div.context, "golden_integrity": "FAILED"},
        )
    return div


def load_bills(root: str | pathlib.Path) -> dict[str, dict[str, int]]:
    """The committed per-kind message-bill fixture."""
    return json.loads((pathlib.Path(root) / BILLS_FILENAME).read_text())
