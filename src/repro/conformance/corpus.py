"""The committed golden corpus: enumeration, recording, verification.

The corpus spans the full conformance matrix —
``{st, fst, pulsesync} × {dense, sparse} × {clean, faulted}`` at
``n ∈ {8, 32, 128}`` — 36 goldens, every one converging in well under a
second so the whole corpus replays inside a CI job.

The faulted half uses one fixed plan (:data:`CORPUS_FAULT_SPEC`): lossy
beacons and PS pulses, a crash window wide enough to exercise repair,
and collision arbitration — each decision a pure function of event
identity, so faulted goldens replay bitwise on every backend (the
committed corpus stores dense and sparse captures; CI additionally
replays it under the forced ``batch`` backend).
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterator

from repro.conformance.golden import (
    GoldenTrace,
    capture_run,
    default_name,
    replay,
)
from repro.conformance.report import Divergence
from repro.core.config import PaperConfig
from repro.faults.plan import FaultConfig

#: Default location of the committed corpus, relative to the repo root.
GOLDENS_DIRNAME = "tests/goldens"

#: Fault plan shared by every faulted golden (see module docstring).
CORPUS_FAULT_SPEC = (
    "beacon_loss=0.05,ps_loss=0.02,crash=0.1,collision=0.1,crash_window_ms=3000"
)

#: Deployment seed shared by the whole corpus.
CORPUS_SEED = 1

CORPUS_SIZES = (8, 32, 128)
CORPUS_ALGORITHMS = ("st", "fst", "pulsesync")
CORPUS_BACKENDS = ("dense", "sparse")

#: Sizes whose ST/FST message bills are additionally pinned in
#: ``message_bills.json`` (the satellite regression fixture).
BILL_SIZES = (8, 32)
BILLS_FILENAME = "message_bills.json"


def corpus_specs() -> Iterator[tuple[str, PaperConfig, str]]:
    """Yield ``(name, config, algorithm)`` for every corpus golden."""
    for n in CORPUS_SIZES:
        for backend in CORPUS_BACKENDS:
            for faulted in (False, True):
                config = PaperConfig(
                    n_devices=n,
                    seed=CORPUS_SEED,
                    backend=backend,
                    faults=(
                        FaultConfig.from_spec(CORPUS_FAULT_SPEC)
                        if faulted
                        else None
                    ),
                )
                for algorithm in CORPUS_ALGORITHMS:
                    yield default_name(config, algorithm), config, algorithm


def golden_path(root: str | pathlib.Path, name: str) -> pathlib.Path:
    return pathlib.Path(root) / f"{name}.json"


def record_corpus(root: str | pathlib.Path) -> list[pathlib.Path]:
    """(Re)record every corpus golden plus the message-bill fixture.

    Returns the written paths.  Recording is the only sanctioned way to
    update goldens — hand-editing breaks the content hash and is flagged
    as corruption by :func:`verify_corpus`.
    """
    root = pathlib.Path(root)
    written: list[pathlib.Path] = []
    bills: dict[str, dict[str, int]] = {}
    for name, config, algorithm in corpus_specs():
        golden = capture_run(config, algorithm, name=name)
        written.append(golden.save(golden_path(root, name)))
        if algorithm in ("st", "fst") and config.n_devices in BILL_SIZES:
            bills[name] = dict(sorted(golden.bill.items()))
    bills_path = root / BILLS_FILENAME
    bills_path.write_text(json.dumps(bills, sort_keys=True, indent=1) + "\n")
    written.append(bills_path)
    return written


def load_corpus(root: str | pathlib.Path) -> list[GoldenTrace]:
    """Load every committed corpus golden, in spec order."""
    return [
        GoldenTrace.load(golden_path(root, name))
        for name, _, _ in corpus_specs()
    ]


def verify_corpus(
    root: str | pathlib.Path, *, backend: str | None = None
) -> list[tuple[str, Divergence | None]]:
    """Replay every committed golden; return per-golden outcomes.

    ``backend`` overrides the stamped execution backend for every
    replay — running the corpus once per backend is the CI
    cross-backend gate.  A golden whose stored content hash no longer
    matches its payload (hand-edited / corrupted file) is still
    replayed, so the outcome names the first diverging round/event
    rather than a bare checksum failure; the corruption is recorded in
    the divergence context.
    """
    outcomes: list[tuple[str, Divergence | None]] = []
    for name, _, _ in corpus_specs():
        path = golden_path(root, name)
        if not path.exists():
            outcomes.append(
                (
                    name,
                    Divergence(
                        pair=f"golden-vs-run:{name}",
                        kind="content",
                        location=str(path),
                        expected="golden file",
                        actual="<missing>",
                    ),
                )
            )
            continue
        golden = GoldenTrace.load(path)
        corrupted = not golden.integrity_ok()
        _, div = replay(golden, backend=backend)
        if div is None and corrupted:
            div = Divergence(
                pair=f"golden-vs-run:{name}",
                kind="content",
                location="content_hash",
                expected=golden.content_hash,
                actual="<recomputed hash differs: golden file edited>",
            )
        elif div is not None and corrupted:
            div = Divergence(
                pair=div.pair,
                kind=div.kind,
                location=div.location,
                round=div.round,
                time_ms=div.time_ms,
                expected=div.expected,
                actual=div.actual,
                context={**div.context, "golden_integrity": "FAILED"},
            )
        outcomes.append((name, div))
    return outcomes


def load_bills(root: str | pathlib.Path) -> dict[str, dict[str, int]]:
    """The committed per-kind message-bill fixture."""
    return json.loads((pathlib.Path(root) / BILLS_FILENAME).read_text())
