"""Canonical serialization and stable content hashing.

Every conformance artifact — golden traces, differential captures,
divergence reports — goes through one canonical form so that two runs
are "the same" iff their canonical bytes are the same:

* **JSON canonicalization**: sorted keys, minimal separators, and
  Python's shortest round-trip ``repr`` for floats (deterministic for
  IEEE-754 doubles across platforms).  Non-finite floats are encoded as
  the tagged strings ``"__inf__"`` / ``"__-inf__"`` / ``"__nan__"`` so
  the output is strict JSON.
* **Content hash**: SHA-256 over the canonical UTF-8 bytes.  Golden
  files commit the hash next to the payload; replay recomputes both.
* **Array hashing**: phase vectors are hashed from their raw float64
  bytes (the kernels produce canonical quiet NaNs for inactive nodes),
  giving a bitwise-sensitive per-round digest without storing the
  vectors themselves.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

import numpy as np

#: Length of truncated per-round digests (hex chars); the combined
#: stream hash stays full-length, so truncation only bounds file size.
ROUND_DIGEST_LEN = 16

_NONFINITE = {
    math.inf: "__inf__",
    -math.inf: "__-inf__",
}


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into strict-JSON-safe builtins.

    NumPy scalars and arrays become Python scalars and lists, tuples
    become lists, dict keys are coerced to ``str``, and non-finite
    floats become tagged strings (see :func:`from_jsonable`).
    """
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        obj = float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if isinstance(obj, float):
        if math.isnan(obj):
            return "__nan__"
        if math.isinf(obj):
            return _NONFINITE[obj]
        return obj
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def from_jsonable(obj: Any) -> Any:
    """Inverse of the non-finite-float tagging of :func:`to_jsonable`."""
    if isinstance(obj, str):
        if obj == "__nan__":
            return math.nan
        if obj == "__inf__":
            return math.inf
        if obj == "__-inf__":
            return -math.inf
        return obj
    if isinstance(obj, list):
        return [from_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        return {k: from_jsonable(v) for k, v in obj.items()}
    return obj


def canonical_json(obj: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace, tagged floats."""
    return json.dumps(
        to_jsonable(obj),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def content_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def hash_array(values: np.ndarray, *, length: int = ROUND_DIGEST_LEN) -> str:
    """Truncated SHA-256 of a float64 array's raw bytes (C order)."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    return hashlib.sha256(arr.tobytes()).hexdigest()[:length]


def combine_hashes(digests: list[str]) -> str:
    """One full-length digest summarizing an ordered digest sequence."""
    h = hashlib.sha256()
    for d in digests:
        h.update(d.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()
