"""Timer utilities built on the engine."""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine, EventHandle


class PeriodicTimer:
    """Fires ``callback(tick_index)`` every ``period`` ms until stopped.

    The timer reschedules itself from the *nominal* tick time, not the
    callback's completion, so long callbacks do not drift the phase.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        callback: Callable[[int], None],
        *,
        start_delay: float = 0.0,
        max_ticks: int | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if max_ticks is not None and max_ticks < 0:
            raise ValueError("max_ticks must be >= 0")
        self.engine = engine
        self.period = float(period)
        self.callback = callback
        self.max_ticks = max_ticks
        self.ticks = 0
        self._handle: EventHandle | None = None
        self._stopped = False
        self._next_time = engine.now + start_delay
        self._arm()

    @property
    def running(self) -> bool:
        return not self._stopped

    def stop(self) -> None:
        """Stop the timer; pending tick is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _arm(self) -> None:
        if self._stopped:
            return
        if self.max_ticks is not None and self.ticks >= self.max_ticks:
            self._stopped = True
            return
        self._handle = self.engine.schedule_at(self._next_time, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        tick = self.ticks
        self.ticks += 1
        self._next_time += self.period
        self._arm()
        self.callback(tick)
