"""Reproducible named random streams.

Every stochastic component of the simulator (placement, shadowing, fading,
phase initialisation, firefly mutation, ...) draws from its **own** child
stream derived from a single master seed via :class:`numpy.random.SeedSequence`
spawning.  This gives two properties the experiments need:

* bit-reproducibility: the same master seed always produces the same run;
* variance isolation: adding draws to one component (say, fading) does not
  perturb another component's stream, so paired ST-vs-FST comparisons see
  identical topologies and channels.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> rs = RandomStreams(42)
    >>> rs.stream("placement") is rs.stream("placement")
    True
    >>> a = RandomStreams(42).stream("x").random()
    >>> b = RandomStreams(42).stream("x").random()
    >>> a == b
    True
    """

    def __init__(self, master_seed: int) -> None:
        if master_seed < 0:
            raise ValueError("master_seed must be non-negative")
        self.master_seed = int(master_seed)
        self._root = np.random.SeedSequence(self.master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The child seed depends only on ``(master_seed, name)`` — not on the
        order in which streams are first requested.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a stable 128-bit key from the name so stream identity
            # is order-independent.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(16, b"\0")[:16], dtype=np.uint32
            )
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(int(x) for x in digest),
            )
            gen = np.random.Generator(np.random.PCG64(child))
            self._streams[name] = gen
        return gen

    def spawn(self, index: int) -> "RandomStreams":
        """Derive an independent sub-universe (e.g. one per sweep repetition)."""
        if index < 0:
            raise ValueError("index must be non-negative")
        # Mix the index into the master seed with a large odd constant; the
        # result stays within the SeedSequence entropy domain.
        mixed = (self.master_seed * 0x9E3779B1 + index * 0x85EBCA77) % (2**63)
        return RandomStreams(mixed)

    def __repr__(self) -> str:
        return (
            f"RandomStreams(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )
