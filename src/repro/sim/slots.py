"""LTE slot bookkeeping.

The paper's Table I fixes the time slot at 1 ms (LTE standard).  All RACH
transmissions happen on slot boundaries; the :class:`SlotClock` converts
between continuous engine time (ms) and integer slot indices.
"""

from __future__ import annotations

import math


class SlotClock:
    """Maps continuous time in ms to integer LTE slots of fixed length.

    Parameters
    ----------
    slot_ms:
        Slot duration in milliseconds (Table I: 1 ms).
    """

    __slots__ = ("slot_ms",)

    def __init__(self, slot_ms: float = 1.0) -> None:
        if slot_ms <= 0:
            raise ValueError(f"slot_ms must be positive, got {slot_ms}")
        self.slot_ms = float(slot_ms)

    def slot_of(self, time_ms: float) -> int:
        """Index of the slot containing ``time_ms`` (slot i covers [i, i+1))."""
        if time_ms < 0:
            raise ValueError(f"time must be >= 0, got {time_ms}")
        return int(math.floor(time_ms / self.slot_ms + 1e-12))

    def start_of(self, slot: int) -> float:
        """Start time (ms) of ``slot``."""
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        return slot * self.slot_ms

    def next_boundary(self, time_ms: float) -> float:
        """First slot boundary strictly after ``time_ms``."""
        return self.start_of(self.slot_of(time_ms) + 1)

    def align(self, time_ms: float) -> float:
        """Snap ``time_ms`` down to its slot start."""
        return self.start_of(self.slot_of(time_ms))

    def same_slot(self, a: float, b: float) -> bool:
        """True if both times fall in one slot — the paper's notion of
        devices having "fired together" for convergence detection."""
        return self.slot_of(a) == self.slot_of(b)

    def __repr__(self) -> str:
        return f"SlotClock(slot_ms={self.slot_ms})"
