"""Deterministic event-heap simulation engine.

The engine maintains a binary heap of ``(time, priority, seq, callback)``
entries.  Ties on ``time`` are broken first by an explicit integer
``priority`` (lower runs first) and then by insertion order (``seq``), so a
run is fully deterministic for a given schedule of calls — a property the
reproduction relies on for seed-stable experiment results.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.sim.errors import (
    ScheduleInPastError,
    SimulationLimitExceeded,
    StopSimulation,
)

if TYPE_CHECKING:  # imported lazily to avoid a sim <-> obs import cycle
    from repro.obs import Observability

#: Default hard cap on processed events; generous for all paper workloads.
DEFAULT_EVENT_BUDGET = 50_000_000


@dataclass(order=True)
class _HeapEntry:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _HeapEntry) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        """Scheduled firing time (ms)."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> bool:
        """Cancel the event; returns ``False`` if it already fired/cancelled.

        Cancellation is lazy: the heap entry stays in place and is skipped
        when popped, which keeps ``cancel`` O(1).
        """
        if self._entry.cancelled:
            return False
        self._entry.cancelled = True
        return True


class Engine:
    """Discrete-event engine with millisecond float time.

    Parameters
    ----------
    event_budget:
        Hard cap on the number of callbacks executed by :meth:`run`.
        Exceeding it raises :class:`SimulationLimitExceeded`.
    obs:
        Optional :class:`~repro.obs.Observability` bundle.  The engine
        publishes ``engine_event_budget``, ``engine_events_processed``,
        ``engine_heap_depth_max`` and ``engine_pending`` gauges when each
        :meth:`run` returns (and on demand via :meth:`publish_metrics`);
        the per-event path is untouched either way.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`.  Each executed
        event consults :meth:`~repro.faults.plan.FaultPlan.event_dropped`
        with the event's sequence number; dropped events advance the
        clock and count against the budget but their callback never runs
        (a lost timer/control message).  Decisions hash the sequence
        number, so a rerun of the same schedule drops the same events.

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [5.0]
    """

    def __init__(
        self,
        event_budget: int = DEFAULT_EVENT_BUDGET,
        obs: "Observability | None" = None,
        faults=None,
    ) -> None:
        if event_budget <= 0:
            raise ValueError("event_budget must be positive")
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._event_budget = event_budget
        self._running = False
        self._max_heap_depth = 0
        self._obs = obs
        self._faults = faults
        self._events_dropped = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def events_dropped(self) -> int:
        """Number of callbacks suppressed by the fault plan."""
        return self._events_dropped

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def max_heap_depth(self) -> int:
        """High-water mark of the event heap (including cancelled entries)."""
        return self._max_heap_depth

    def publish_metrics(self) -> None:
        """Write engine gauges into the attached observability bundle."""
        if self._obs is None:
            return
        g = self._obs.metrics.gauge
        g("engine_event_budget", help="hard cap on processed events").set(
            self._event_budget
        )
        g("engine_events_processed", help="callbacks executed so far").set(
            self._events_processed
        )
        g("engine_heap_depth_max", help="event-heap high-water mark").set(
            self._max_heap_depth
        )
        g("engine_pending", help="live events still queued").set(self.pending)
        if self._faults is not None:
            g(
                "engine_events_dropped",
                help="callbacks suppressed by the fault plan",
            ).set(self._events_dropped)
        bus = getattr(self._obs, "bus", None)
        if bus is not None:
            bus.publish(
                "engine",
                self._now,
                events_processed=self._events_processed,
                pending=self.pending,
                heap_depth_max=self._max_heap_depth,
                events_dropped=self._events_dropped,
            )

    def peek(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ms from now."""
        return self.schedule_at(self._now + delay, callback, priority=priority)

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when`` (ms)."""
        if when < self._now:
            raise ScheduleInPastError(when, self._now)
        entry = _HeapEntry(float(when), priority, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        if len(self._heap) > self._max_heap_depth:
            self._max_heap_depth = len(self._heap)
        return EventHandle(entry)

    def call_soon(
        self, callback: Callable[[], None], *, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule_at(self._now, callback, priority=priority)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next live event.  Returns ``False`` if queue was empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self._now = entry.time
        self._events_processed += 1
        if self._events_processed > self._event_budget:
            raise SimulationLimitExceeded(self._event_budget)
        if self._faults is not None and self._faults.event_dropped(entry.seq):
            self._events_dropped += 1
            if self._obs is not None:
                self._obs.metrics.counter(
                    "faults_injected_total",
                    help="fault events injected by the active FaultPlan",
                    unit="events",
                ).inc(1, kind="event_drop")
            return True
        entry.callback()
        return True

    def advance(self, duration_ms: float, *, trace=None) -> int:
        """Incrementally advance the clock by exactly ``duration_ms``.

        The resumable stepping API for long-running hosts (the discovery
        service steps its world one epoch at a time instead of running
        the engine to completion): processes every live event scheduled
        inside the window, lands the clock on ``now + duration_ms`` even
        when no event falls there, and returns the number of callbacks
        executed.  Repeated calls pick up where the previous one left
        off; pending events beyond the window stay queued.

        ``trace`` is an optional ops-plane
        :class:`~repro.obs.ops.TraceContext`: when the attached bundle
        carries an ops plane, the window is recorded as an
        ``engine.advance`` wall-clock span under it (ops plane only —
        nothing on the deterministic plane changes either way).
        """
        if duration_ms < 0:
            raise ValueError(f"duration_ms must be >= 0, got {duration_ms}")
        before = self._events_processed
        ops = getattr(self._obs, "ops", None) if self._obs is not None else None
        if ops is None:
            self.run(until=self._now + duration_ms)
        else:
            with ops.span(
                "engine.advance", parent=trace, duration_ms=duration_ms
            ) as ctx:
                ctx  # children would hang off the engine window
                self.run(until=self._now + duration_ms)
        return self._events_processed - before

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or time would pass ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if no event falls on it, mirroring SimPy's ``run(until=...)``
        semantics.  A callback may raise :class:`StopSimulation` to halt
        the run early; the clock stays at that callback's time.
        """
        self._running = True
        try:
            while self._heap:
                self._drop_cancelled_head()
                if not self._heap:
                    break
                if until is not None and self._heap[0].time > until:
                    break
                try:
                    self.step()
                except StopSimulation:
                    return
            if until is not None and until > self._now:
                self._now = float(until)
        finally:
            self._running = False
            self.publish_metrics()

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
