"""Discrete-event simulation engine.

This subpackage is the substrate on which the D2D simulations run.  It
provides a deterministic event-heap engine (:class:`~repro.sim.engine.Engine`),
generator-based processes (:mod:`repro.sim.process`), LTE slot bookkeeping
(:class:`~repro.sim.slots.SlotClock`), reproducible random-stream management
(:class:`~repro.sim.random.RandomStreams`) and structured event tracing
(:class:`~repro.sim.trace.TraceRecorder`).

The engine is intentionally small and has no external dependencies beyond
NumPy (for RNG).  Time is a ``float`` in **milliseconds** to match the
paper's 1 ms LTE slot granularity (Table I).
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.errors import (
    ScheduleInPastError,
    SimulationError,
    SimulationLimitExceeded,
    StopSimulation,
)
from repro.sim.process import Process, Timeout, WaitSignal, Signal
from repro.sim.random import RandomStreams
from repro.sim.resources import Container, Resource, Store
from repro.sim.slots import SlotClock
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceRecorder, TraceRecord

__all__ = [
    "Container",
    "Engine",
    "EventHandle",
    "PeriodicTimer",
    "Process",
    "RandomStreams",
    "Resource",
    "Store",
    "ScheduleInPastError",
    "Signal",
    "SimulationError",
    "SimulationLimitExceeded",
    "SlotClock",
    "StopSimulation",
    "Timeout",
    "TraceRecord",
    "TraceRecorder",
    "WaitSignal",
]
