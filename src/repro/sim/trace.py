"""Structured event tracing and counting.

Protocol implementations emit trace records (``recorder.emit(t, "ps_tx",
node=3, codec=1)``); analysis code filters and counts them.  Counters are
kept separately from the record list so message counting stays O(1) even
when full record retention is disabled for big sweeps.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def canonical(self) -> tuple[float, str, tuple[tuple[str, Any], ...]]:
        """Order-stable tuple form used for conformance comparison.

        Two records are conformance-equal iff their canonical tuples are
        equal; the data dict is flattened in sorted-key order so insert
        order cannot leak into golden-trace hashes.
        """
        return (
            self.time,
            self.category,
            tuple(sorted(self.data.items())),
        )


class TraceRecorder:
    """Collects :class:`TraceRecord` objects and per-category counters.

    Parameters
    ----------
    keep_records:
        When ``False`` only counters are maintained (constant memory); the
        large fig3/fig4 sweeps run in this mode.
    """

    def __init__(self, keep_records: bool = True) -> None:
        self.keep_records = keep_records
        self._records: list[TraceRecord] = []
        self._by_category: dict[str, list[TraceRecord]] = {}
        self._counts: Counter[str] = Counter()

    # ------------------------------------------------------------------
    def emit(self, time: float, category: str, **data: Any) -> None:
        """Record one event in ``category`` at ``time``."""
        self._counts[category] += 1
        if self.keep_records:
            record = TraceRecord(time, category, data)
            self._records.append(record)
            self._by_category.setdefault(category, []).append(record)

    def count(self, category: str) -> int:
        """Number of events emitted in ``category``."""
        return self._counts[category]

    def total(self, *categories: str) -> int:
        """Sum of counts over ``categories`` (all categories if empty)."""
        if not categories:
            return sum(self._counts.values())
        return sum(self._counts[c] for c in categories)

    @property
    def categories(self) -> list[str]:
        return sorted(self._counts)

    # ------------------------------------------------------------------
    def records(self, category: str | None = None) -> list[TraceRecord]:
        """All retained records, optionally filtered by category.

        Per-category lookup is O(k) in the matching records (an index is
        maintained at emit time), not a scan of the full record list.
        """
        if not self.keep_records:
            raise RuntimeError(
                "record retention is disabled (keep_records=False); "
                "only counters are available"
            )
        if category is None:
            return list(self._records)
        return list(self._by_category.get(category, ()))

    def __iter__(self) -> Iterator[TraceRecord]:
        """Iterate retained records.

        In counters-only mode (``keep_records=False``) there are no
        records to yield, so iteration is empty — ``len()`` still
        reports the counter total.
        """
        if not self.keep_records:
            return iter(())
        return iter(self._records)

    def __len__(self) -> int:
        return sum(self._counts.values())

    def clear(self) -> None:
        self._records.clear()
        self._by_category.clear()
        self._counts.clear()

    def __repr__(self) -> str:
        return f"TraceRecorder(total={len(self)}, categories={self.categories})"
