"""Contention primitives for processes: Resource, Store, Container.

These complete the engine substrate with the SimPy-style primitives that
slot-contention and queueing models need (e.g. modelling a RACH
opportunity as a capacity-k resource).  All three integrate with the
generator-process protocol: acquiring/getting yields a
:class:`~repro.sim.process.WaitSignal` directive, so a process writes

    grant = yield resource.acquire()
    ...critical section...
    resource.release()

Fairness is FIFO: waiters are granted strictly in arrival order.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Engine
from repro.sim.process import Signal, WaitSignal


class Resource:
    """Capacity-limited resource with FIFO granting.

    Parameters
    ----------
    engine:
        The engine used to schedule grant wakeups.
    capacity:
        Number of simultaneous holders.
    """

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Signal] = deque()

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> WaitSignal:
        """Directive to yield; resumes when a slot is granted."""
        sig = Signal("resource-grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            self.engine.call_soon(lambda: sig.fire(self))
        else:
            self._waiters.append(sig)
        return WaitSignal(sig)

    def release(self) -> None:
        """Free one slot; the oldest waiter (if any) is granted in place."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching acquire()")
        if self._waiters:
            sig = self._waiters.popleft()
            # slot passes directly to the waiter: in_use stays constant
            self.engine.call_soon(lambda: sig.fire(self))
        else:
            self._in_use -= 1


class Store:
    """FIFO item store with optional capacity (SimPy's Store).

    ``put`` never blocks unless the store is full; ``get`` blocks until an
    item is available.  Items are handed to getters in insertion order.
    """

    def __init__(self, engine: Engine, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.engine = engine
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Signal] = deque()
        self._putters: deque[tuple[Signal, Any]] = deque()

    # ------------------------------------------------------------------
    @property
    def item_count(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> WaitSignal:
        """Directive; resumes once the item is stored (or handed over)."""
        sig = Signal("store-put")
        if self._getters:
            getter = self._getters.popleft()
            self.engine.call_soon(lambda: getter.fire(item))
            self.engine.call_soon(lambda: sig.fire(None))
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self.engine.call_soon(lambda: sig.fire(None))
        else:
            self._putters.append((sig, item))
        return WaitSignal(sig)

    def get(self) -> WaitSignal:
        """Directive; resumes with the oldest item."""
        sig = Signal("store-get")
        if self._items:
            item = self._items.popleft()
            self.engine.call_soon(lambda: sig.fire(item))
            # a blocked putter can now complete
            if self._putters:
                put_sig, put_item = self._putters.popleft()
                self._items.append(put_item)
                self.engine.call_soon(lambda: put_sig.fire(None))
        else:
            self._getters.append(sig)
        return WaitSignal(sig)


class Container:
    """Continuous-level container (tokens, energy, credit).

    ``get(amount)`` blocks until the level covers the request; ``put``
    raises the level and wakes satisfiable getters in FIFO order.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        capacity: float = float("inf"),
        initial: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= initial <= capacity:
            raise ValueError("initial level must lie in [0, capacity]")
        self.engine = engine
        self.capacity = float(capacity)
        self._level = float(initial)
        self._getters: deque[tuple[Signal, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        """Add immediately (overflow raises); wakes eligible getters."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        if self._level + amount > self.capacity + 1e-12:
            raise ValueError(
                f"overflow: level {self._level} + {amount} exceeds "
                f"capacity {self.capacity}"
            )
        self._level += amount
        # FIFO drain: stop at the first waiter we cannot satisfy
        while self._getters and self._getters[0][1] <= self._level:
            sig, req = self._getters.popleft()
            self._level -= req
            self.engine.call_soon(lambda s=sig, r=req: s.fire(r))

    def get(self, amount: float) -> WaitSignal:
        """Directive; resumes once ``amount`` has been withdrawn."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.capacity:
            raise ValueError("request exceeds container capacity")
        sig = Signal("container-get")
        if not self._getters and amount <= self._level:
            self._level -= amount
            self.engine.call_soon(lambda: sig.fire(amount))
        else:
            self._getters.append((sig, amount))
        return WaitSignal(sig)
