"""Generator-based processes on top of :class:`repro.sim.engine.Engine`.

A *process* is a Python generator that yields scheduling directives:

``Timeout(delay)``
    Suspend the process for ``delay`` milliseconds.

``WaitSignal(signal)``
    Suspend until another process (or callback) fires the signal.  The
    value passed to :meth:`Signal.fire` becomes the result of the yield.

This mirrors the SimPy programming model closely enough that protocol
pseudo-code written against SimPy ports over directly, while staying a few
hundred lines of dependency-free code.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.sim.engine import Engine, EventHandle


class Timeout:
    """Directive: resume the yielding process after ``delay`` ms."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


class Signal:
    """One-to-many wakeup channel.

    Processes yield ``WaitSignal(sig)``; a later ``sig.fire(value)`` resumes
    every waiter at the current simulation time with ``value`` as the yield
    result.  Waiters registered *after* a fire wait for the next fire
    (edge-triggered, like a condition variable's notify_all).
    """

    __slots__ = ("name", "_waiters", "fire_count")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Process] = []
        self.fire_count = 0

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume_soon(value)
        return len(waiters)

    def _register(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def __repr__(self) -> str:
        label = self.name or hex(id(self))
        return f"Signal({label}, waiters={len(self._waiters)})"


class WaitSignal:
    """Directive: resume the yielding process when ``signal`` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal

    def __repr__(self) -> str:
        return f"WaitSignal({self.signal!r})"


class Process:
    """Drives a generator, interpreting yielded directives.

    The process starts at the current engine time (scheduled via
    ``call_soon``) unless ``start_delay`` is given.
    """

    def __init__(
        self,
        engine: Engine,
        generator: Generator[Any, Any, Any],
        *,
        name: str = "",
        start_delay: float = 0.0,
    ) -> None:
        self.engine = engine
        self.name = name or repr(generator)
        self._gen = generator
        self._alive = True
        self._result: Any = None
        self._pending_handle: EventHandle | None = None
        self._done_signal = Signal(f"done:{self.name}")
        if start_delay:
            engine.schedule(start_delay, lambda: self._resume(None))
        else:
            engine.call_soon(lambda: self._resume(None))

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True until the generator returns or is interrupted."""
        return self._alive

    @property
    def result(self) -> Any:
        """The generator's return value (``None`` until finished)."""
        return self._result

    @property
    def done_signal(self) -> Signal:
        """Fires (with the return value) when the process finishes."""
        return self._done_signal

    def interrupt(self) -> None:
        """Kill the process: cancel its pending timeout and close the generator."""
        if not self._alive:
            return
        self._alive = False
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        self._gen.close()
        self._done_signal.fire(None)

    # ------------------------------------------------------------------
    def _resume_soon(self, value: Any) -> None:
        self.engine.call_soon(lambda: self._resume(value))

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        self._pending_handle = None
        try:
            directive = self._gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self._result = stop.value
            self._done_signal.fire(stop.value)
            return
        self._dispatch(directive)

    def _dispatch(self, directive: Any) -> None:
        if isinstance(directive, Timeout):
            self._pending_handle = self.engine.schedule(
                directive.delay, lambda: self._resume(None)
            )
        elif isinstance(directive, WaitSignal):
            directive.signal._register(self)
        elif isinstance(directive, Process):
            # waiting on a child process == waiting on its done signal
            if directive.alive:
                directive.done_signal._register(self)
            else:
                self._resume_soon(directive.result)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported directive "
                f"{directive!r}; expected Timeout, WaitSignal or Process"
            )

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"Process({self.name}, {state})"


def all_done(engine: Engine, processes: Iterable[Process]) -> Process:
    """Return a process that completes when every input process has."""

    def _waiter() -> Generator[Any, Any, list[Any]]:
        results = []
        for proc in processes:
            if proc.alive:
                yield WaitSignal(proc.done_signal)
            results.append(proc.result)
        return results

    return Process(engine, _waiter(), name="all_done")
