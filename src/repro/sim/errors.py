"""Exception hierarchy for the simulation engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-engine errors."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled at a time earlier than ``now``.

    The engine never rewinds its clock; allowing past events would break
    causality and make traces unusable.
    """

    def __init__(self, when: float, now: float) -> None:
        super().__init__(f"cannot schedule event at t={when} (now t={now})")
        self.when = when
        self.now = now


class SimulationLimitExceeded(SimulationError):
    """Raised when the engine exceeds its configured event budget.

    A hard event budget catches livelocked protocols (e.g. a pulse-coupled
    oscillator echo storm with no refractory period) instead of spinning
    forever.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(f"event budget exhausted ({limit} events processed)")
        self.limit = limit


class StopSimulation(Exception):  # noqa: N818 - control-flow sentinel
    """Raised inside a callback to halt the run immediately.

    This is control flow, not an error: ``Engine.run`` catches it and
    returns normally.
    """
