"""Device mobility — eq. (13) as motion, plus classic random waypoint.

The paper's eq. (13),

    xᵢ ← xᵢ + k·exp[−γ·r²ᵢⱼ]·(xⱼ − xᵢ) + η·μ,

is literally a *location update between two devices*: a device drifts
toward a brighter (stronger-PS / more attractive) peer with a Gaussian
exploration term.  §VI lists "more realistic scenarios" as future work;
this subpackage provides both the paper's attraction dynamics
(:class:`FireflyAttractionMobility`) and the standard random-waypoint
model (:class:`RandomWaypoint`), plus a session harness that measures how
synchronization and the spanning tree survive motion
(:class:`MobilitySession`).
"""

from repro.mobility.attraction import FireflyAttractionMobility
from repro.mobility.resync import MobilityEpoch, MobilitySession
from repro.mobility.waypoint import RandomWaypoint

__all__ = [
    "FireflyAttractionMobility",
    "MobilityEpoch",
    "MobilitySession",
    "RandomWaypoint",
]
