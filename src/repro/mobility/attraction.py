"""Firefly-attraction mobility — eq. (13) applied to device positions.

Each step, every device moves toward its *brightest detected* peer
(brightness = any scalar attractiveness: PS strength toward a service
peer, content value, residual battery, ...) with the eq. (13) update

    xᵢ ← xᵢ + k·exp[−γ·r²ᵢⱼ]·(xⱼ − xᵢ) + η·μ.

The attraction kernel means far peers barely pull (the exp collapses) and
near-bright peers pull hard — devices with shared interests physically
cluster, which shortens their D2D links; the MobilitySession harness
quantifies that effect.
"""

from __future__ import annotations

import numpy as np

from repro.firefly.attractiveness import gaussian_kernel


class FireflyAttractionMobility:
    """Eq. (13) motion toward brighter detected peers.

    Parameters
    ----------
    positions:
        Initial ``(n, 2)`` coordinates (copied).
    area_side_m:
        Square-area side; motion is clipped into the area.
    step:
        ``k`` of eq. (13) — fraction of the gap closed per move.
    gamma:
        Attraction coefficient ``γ`` (per m²); sets the attraction range.
    eta_m:
        ``η`` — Gaussian exploration step in metres.
    rng:
        Seeded generator (for μ).
    """

    def __init__(
        self,
        positions: np.ndarray,
        area_side_m: float,
        *,
        step: float = 0.3,
        gamma: float = 1e-3,
        eta_m: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {positions.shape}")
        if area_side_m <= 0:
            raise ValueError("area_side_m must be positive")
        if not 0.0 < step <= 1.0:
            raise ValueError(f"step k must be in (0, 1], got {step}")
        if gamma < 0:
            raise ValueError("gamma must be >= 0")
        if eta_m < 0:
            raise ValueError("eta_m must be >= 0")
        self.positions = positions.copy()
        self.area_side_m = float(area_side_m)
        self.step = float(step)
        self.gamma = float(gamma)
        self.eta_m = float(eta_m)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.n = positions.shape[0]

    def move(
        self,
        brightness: np.ndarray,
        visible: np.ndarray | None = None,
    ) -> np.ndarray:
        """One eq.-13 step; returns the new positions (copy).

        Parameters
        ----------
        brightness:
            Per-device attractiveness ``I``; device j attracts i iff
            ``I[j] > I[i]`` (Algorithm 3's brightness rule).
        visible:
            Optional boolean ``(n, n)`` detectability mask (a device only
            moves toward peers it can hear); default all-visible.
        """
        brightness = np.asarray(brightness, dtype=float)
        if brightness.shape != (self.n,):
            raise ValueError(
                f"brightness must have shape ({self.n},), got {brightness.shape}"
            )
        if visible is None:
            visible = ~np.eye(self.n, dtype=bool)
        else:
            visible = np.asarray(visible, dtype=bool)
            if visible.shape != (self.n, self.n):
                raise ValueError("visible must be (n, n)")

        # candidate targets: visible peers strictly brighter than me
        brighter = visible & (brightness[None, :] > brightness[:, None])
        # among them pick the brightest (Algorithm 3 line 9-10)
        masked = np.where(brighter, brightness[None, :], -np.inf)
        target = np.argmax(masked, axis=1)
        has_target = np.isfinite(masked[np.arange(self.n), target])

        new = self.positions.copy()
        if has_target.any():
            i = np.nonzero(has_target)[0]
            j = target[i]
            delta = self.positions[j] - self.positions[i]
            r2 = np.einsum("ij,ij->i", delta, delta)
            beta = self.step * gaussian_kernel(np.sqrt(r2), self.gamma)
            new[i] += beta[:, None] * delta
        # every device explores (rule III: equal brightness → random move)
        new += self.eta_m * self.rng.standard_normal((self.n, 2))
        np.clip(new, 0.0, self.area_side_m, out=new)
        self.positions = new
        return new.copy()

    def mean_pairwise_distance(self, subset: np.ndarray | None = None) -> float:
        """Mean pairwise distance (of ``subset`` ids if given) — the
        clustering metric the extension experiments track."""
        pts = self.positions if subset is None else self.positions[subset]
        if pts.shape[0] < 2:
            return 0.0
        diff = pts[:, None, :] - pts[None, :, :]
        d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        iu, ju = np.triu_indices(pts.shape[0], k=1)
        return float(d[iu, ju].mean())
