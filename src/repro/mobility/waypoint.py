"""Random-waypoint mobility (the standard ad-hoc evaluation model).

Each device picks a uniform random destination in the area and moves
toward it at a per-device speed; on arrival it pauses for a random time
and repeats.  Fully vectorized: one ``step`` advances every device.
"""

from __future__ import annotations

import numpy as np


class RandomWaypoint:
    """Vectorized random-waypoint walker.

    Parameters
    ----------
    positions:
        Initial ``(n, 2)`` coordinates (copied).
    area_side_m:
        Square-area side; all motion is clipped to ``[0, side]``.
    speed_range_mps:
        ``(min, max)`` uniform speed per leg, metres/second.
    pause_range_s:
        ``(min, max)`` uniform pause at each waypoint, seconds.
    rng:
        Seeded generator.
    """

    def __init__(
        self,
        positions: np.ndarray,
        area_side_m: float,
        *,
        speed_range_mps: tuple[float, float] = (0.5, 1.5),
        pause_range_s: tuple[float, float] = (0.0, 2.0),
        rng: np.random.Generator | None = None,
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {positions.shape}")
        if area_side_m <= 0:
            raise ValueError("area_side_m must be positive")
        lo, hi = speed_range_mps
        if not 0 < lo <= hi:
            raise ValueError(f"invalid speed range {speed_range_mps}")
        plo, phi = pause_range_s
        if not 0 <= plo <= phi:
            raise ValueError(f"invalid pause range {pause_range_s}")
        self.positions = positions.copy()
        self.area_side_m = float(area_side_m)
        self.speed_range = (float(lo), float(hi))
        self.pause_range = (float(plo), float(phi))
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.n = positions.shape[0]
        self._targets = self._draw_targets(np.ones(self.n, dtype=bool))
        self._speeds = self.rng.uniform(lo, hi, size=self.n)
        self._pause_left = np.zeros(self.n)

    def _draw_targets(self, mask: np.ndarray) -> np.ndarray:
        targets = getattr(self, "_targets", np.zeros((self.n, 2)))
        k = int(mask.sum())
        if k:
            targets = targets.copy()
            targets[mask] = self.rng.uniform(
                0.0, self.area_side_m, size=(k, 2)
            )
        return targets

    def step(self, dt_s: float) -> np.ndarray:
        """Advance every device by ``dt_s`` seconds; returns positions (view copy)."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        moving = self._pause_left <= 0.0
        self._pause_left = np.maximum(self._pause_left - dt_s, 0.0)

        delta = self._targets - self.positions
        dist = np.linalg.norm(delta, axis=1)
        travel = self._speeds * dt_s
        arrive = moving & (travel >= dist)
        cruise = moving & ~arrive

        # cruising devices move along the unit vector
        if cruise.any():
            unit = delta[cruise] / np.maximum(dist[cruise, None], 1e-12)
            self.positions[cruise] += unit * travel[cruise, None]
        # arrivals snap to target, start a pause, pick the next leg
        if arrive.any():
            self.positions[arrive] = self._targets[arrive]
            k = int(arrive.sum())
            self._pause_left[arrive] = self.rng.uniform(
                self.pause_range[0], self.pause_range[1], size=k
            )
            self._targets = self._draw_targets(arrive)
            self._speeds[arrive] = self.rng.uniform(
                self.speed_range[0], self.speed_range[1], size=k
            )
        np.clip(self.positions, 0.0, self.area_side_m, out=self.positions)
        return self.positions.copy()
