"""Mobility session: how synchronization and the tree survive motion.

The session starts from a synchronized, tree-organized network.  Each
epoch the devices move (any mobility model with ``positions`` and a step
method), the channel is rebuilt at the new geometry, and the network
re-synchronizes over the *new* maximum-PS spanning tree.  Per-epoch
records capture the re-sync cost (time, messages), how much of the old
tree survived, and the current phase coherence — the quantities a
"realistic scenario" extension of the paper (its §VI) would plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import PaperConfig
from repro.core.pulsesync import PulseSyncKernel
from repro.oscillator.prc import LinearPRC
from repro.radio.fading import NoFading, RayleighFading
from repro.radio.link import LinkBudget
from repro.radio.pathloss import PaperPathLoss
from repro.radio.shadowing import LogNormalShadowing, NoShadowing
from repro.spanningtree.boruvka import distributed_boruvka


class _FrozenShadowing:
    """Shadowing provider that replays one fixed link matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        self._matrix = matrix
        self.sigma_db = float(matrix.std()) if matrix.size else 0.0

    def link_matrix(self, n: int) -> np.ndarray:
        if n != self._matrix.shape[0]:
            raise ValueError(
                f"frozen shadowing is {self._matrix.shape[0]}x..., asked for {n}"
            )
        return self._matrix

    def sample(self, size=1) -> np.ndarray:
        raise NotImplementedError("frozen shadowing only provides link_matrix")


@dataclass(frozen=True)
class MobilityEpoch:
    """One epoch's outcome."""

    epoch: int
    resync_time_ms: float
    resync_messages: int
    converged: bool
    #: fraction of the previous epoch's tree edges still in the new tree
    tree_stability: float
    mean_tree_edge_m: float


class MobilitySession:
    """Move → rebuild channel → re-tree → re-sync, epoch by epoch.

    Parameters
    ----------
    config:
        Scenario parameters (the mobility area is ``config.area_side_m``).
    mover:
        Object exposing ``positions`` (``(n, 2)`` array) that the caller
        advances between :meth:`run_epoch` calls.
    seed:
        Seed for the per-epoch channel and sync draws.
    """

    def __init__(
        self, config: PaperConfig, mover, *, seed: int = 0
    ) -> None:
        self.config = config
        self.mover = mover
        self.rng = np.random.default_rng(seed)
        self.prc = LinearPRC.from_dissipation(config.dissipation, config.epsilon)
        self.epochs: list[MobilityEpoch] = []
        self._prev_tree: set[tuple[int, int]] = set()
        # the per-link shadowing environment is drawn once and held fixed
        # across epochs (buildings don't reshuffle when devices walk), so
        # tree churn measures *geometry* change, not channel re-rolls
        if config.shadowing_sigma_db > 0:
            self._shadow = _FrozenShadowing(
                LogNormalShadowing(
                    config.shadowing_sigma_db, self.rng
                ).link_matrix(config.n_devices)
            )
        else:
            self._shadow = NoShadowing()

    # ------------------------------------------------------------------
    def _build_budget(self) -> LinkBudget:
        cfg = self.config
        shadowing = self._shadow
        fading = (
            RayleighFading(self.rng)
            if cfg.fading_model == "rayleigh"
            else NoFading()
        )
        return LinkBudget(
            self.mover.positions,
            PaperPathLoss(),
            tx_power_dbm=cfg.tx_power_dbm,
            threshold_dbm=cfg.threshold_dbm,
            shadowing=shadowing,
            fading=fading,
        )

    def run_epoch(self) -> MobilityEpoch:
        """Rebuild the channel at current positions, re-tree, re-sync."""
        cfg = self.config
        budget = self._build_budget()
        adjacency = budget.adjacency() & budget.adjacency().T
        np.fill_diagonal(adjacency, False)
        weights = 0.5 * (budget.mean_rx_dbm + budget.mean_rx_dbm.T)

        boruvka = distributed_boruvka(weights, adjacency)
        tree = set(boruvka.edges)
        if self._prev_tree:
            stability = len(tree & self._prev_tree) / max(len(self._prev_tree), 1)
        else:
            stability = 1.0
        self._prev_tree = tree

        n = cfg.n_devices
        tree_adj = np.zeros((n, n), dtype=bool)
        for u, v in tree:
            tree_adj[u, v] = tree_adj[v, u] = True

        kernel = PulseSyncKernel(
            budget.mean_rx_dbm,
            tree_adj,
            self.prc,
            period_ms=cfg.period_ms,
            threshold_dbm=cfg.threshold_dbm,
            refractory_ms=cfg.refractory_ms,
            sync_window_ms=cfg.sync_window_ms,
            fading=budget.fading,
            collision_policy=cfg.collision_policy,
        )
        # devices kept their clocks through the move: phases start nearly
        # aligned, perturbed by the inter-epoch drift (a few slots)
        base = float(self.rng.uniform(0.0, 0.9))
        jitter = self.rng.uniform(0.0, 0.05, size=n)
        sync = kernel.run(
            self.rng,
            initial_phases=np.clip(base + jitter, 0.0, 1.0 - 1e-9),
            max_time_ms=cfg.max_time_ms,
        )

        dist = budget.distance_m
        edge_m = (
            float(np.mean([dist[u, v] for u, v in tree])) if tree else 0.0
        )
        record = MobilityEpoch(
            epoch=len(self.epochs),
            resync_time_ms=sync.time_ms,
            resync_messages=sync.messages,
            converged=sync.converged,
            tree_stability=stability,
            mean_tree_edge_m=edge_m,
        )
        self.epochs.append(record)
        return record
