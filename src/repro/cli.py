"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment <id>``
    Run one of the paper's evaluation artifacts (``fig2``, ``fig3``,
    ``fig4``, ``table1``, ``complexity``) and print its rendered output.
``simulate``
    Run ST and/or FST on one scenario and print the result summary.
    ``--trace out.jsonl`` / ``--metrics out.json`` additionally write the
    machine-readable run artifacts (JSONL event trace with per-device
    Lamport clocks, metrics snapshot + analyzer alerts); ``--live``
    streams one-line progress updates from the telemetry bus.
``profile <id>``
    Run an experiment under the observability layer and print its nested
    wall-clock span tree, the per-span self-time/call-count profile
    table and the headline counters; ``--json`` exports the span tree
    machine-readably and ``--folded`` writes folded stacks for
    ``flamegraph.pl`` / speedscope.
``trend``
    Render per-benchmark wall-time and budget-headroom trends (inline
    SVG sparklines) from the committed baselines, the bench-history
    JSONL and the freshest ``results/`` artifacts; ``--record`` appends
    the current artifacts to the history first.
``conformance``
    Golden-trace conformance gate: ``record`` (re)writes the corpus
    under ``tests/goldens/``, ``run`` replays every committed golden
    (optionally forcing a backend) plus the metamorphic relation
    registry, ``diff`` executes one differential pair (dense/sparse,
    sparse/batch, clean/noop faults, Borůvka/oracle, sorted/naive
    FFA).  Any
    divergence prints a first-diverging-round report and exits 1.
    ``run --ops`` replays the corpus under a live ops plane — the bytes
    must still match the committed goldens.
``serve``
    Run the discovery service over a live churning world; the ops plane
    (latency SLOs, request tracing, flight recorder) is on by default
    and never changes a response byte (``--no-ops`` to disable).
``trace <id>``
    Fetch one request trace from a running service (``GET /trace/{id}``)
    and render the wall-clock span tree.
``flight dump``
    Capture a flight-recorder post-mortem bundle (JSON + HTML) from a
    running service on demand.
``list``
    List the available experiment ids.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__
from repro.core.fst import FSTSimulation
from repro.core.network import D2DNetwork
from repro.core.st import STSimulation
from repro.experiments import EXPERIMENTS
from repro.experiments.scaling import run_scaling


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Firefly-inspired improved distributed proximity algorithm "
            "for D2D communication (IPDPSW 2015 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a paper artifact")
    exp.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    exp.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="device counts for fig3/fig4 (default: paper grid)",
    )
    exp.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="repetition seeds for fig3/fig4",
    )

    sim = sub.add_parser("simulate", help="run one scenario")
    sim.add_argument("--devices", "-n", type=int, default=None)
    sim.add_argument("--area", type=float, default=None, help="side (m)")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument(
        "--scenario",
        default="paper",
        help="named preset (paper, stadium, mall, campus, iot)",
    )
    sim.add_argument(
        "--algorithm",
        choices=("st", "fst", "both"),
        default="both",
    )
    # no argparse choices: the value flows into PaperConfig validation so
    # an invalid backend/faults combination exits 2 with a clean message
    sim.add_argument(
        "--backend",
        default=None,
        help="execution backend: auto, dense, sparse or batch (auto "
        "switches to sparse at config.sparse_threshold_devices and to "
        "batch at config.batch_threshold_devices)",
    )
    sim.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault plan, e.g. "
        "'beacon_loss=0.05,crash=0.1,collision=0.2,drift=0.001' "
        "(see repro.faults.FaultConfig.from_spec)",
    )
    sim.add_argument(
        "--shards",
        default=None,
        metavar="RxC",
        help="run the scenario as a sharded city over an RxC tiling "
        "(e.g. 2x2): every tile an independent single-region shard, "
        "cross-tile proximity via halo exchange (see docs/sharding.md)",
    )
    sim.add_argument(
        "--shard-workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool size for --shards (content is identical for "
        "every N; default 1)",
    )
    sim.add_argument(
        "--canonical",
        default=None,
        metavar="PATH",
        help="with --shards: write the canonical sharded-run document "
        "(JSON) for byte comparison between runs/backends",
    )
    sim.add_argument(
        "--breakdown", action="store_true", help="print per-kind message bill"
    )
    sim.add_argument(
        "--export-csv",
        default=None,
        metavar="PATH",
        help="also write the run results as CSV",
    )
    sim.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL event trace (ps_tx, merge, beacon_period, ...)",
    )
    sim.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the metrics registry snapshot (+probes, spans, "
        "alerts) as JSON",
    )
    sim.add_argument(
        "--live",
        action="store_true",
        help="print one-line progress updates from the telemetry bus "
        "(sync spread, fragment counts, analyzer alerts) as the run "
        "advances",
    )

    prof = sub.add_parser(
        "profile",
        help="run an experiment and print its wall-clock span tree",
    )
    prof.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    prof.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="device counts for fig3/fig4 (default: 50 100 — a fast grid)",
    )
    prof.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="repetition seeds for fig3/fig4 (default: 1)",
    )
    prof.add_argument(
        "--min-ms",
        type=float,
        default=0.0,
        help="hide spans shorter than this many milliseconds",
    )
    prof.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="also write the aggregated metrics snapshot as JSON",
    )
    prof.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_path",
        help="export the span tree (plus headline counters) as JSON",
    )
    prof.add_argument(
        "--folded",
        default=None,
        metavar="PATH",
        help="export folded stacks (self-time µs per call path) for "
        "flamegraph.pl / speedscope",
    )
    prof.add_argument(
        "--top",
        type=int,
        default=15,
        help="rows in the printed per-span profile table (default 15)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the discovery service over a live churning world",
    )
    serve.add_argument("--devices", "-n", type=int, default=256)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument(
        "--backend",
        choices=("auto", "dense", "sparse", "batch"),
        default="auto",
        help="network backend for the world universe (default auto)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642, help="0 = OS-assigned port"
    )
    serve.add_argument(
        "--arrival-rate", type=float, default=2.0,
        help="Poisson mean arrivals per epoch",
    )
    serve.add_argument(
        "--departure-rate", type=float, default=2.0,
        help="Poisson mean departures per epoch",
    )
    serve.add_argument(
        "--min-population", type=int, default=2,
        help="population floor enforced by the steady-state driver",
    )
    serve.add_argument(
        "--max-population", type=int, default=None,
        help="population ceiling (default: the whole universe)",
    )
    serve.add_argument(
        "--step-ms", type=float, default=1000.0,
        help="simulated milliseconds per world epoch",
    )
    serve.add_argument(
        "--auto-step", type=float, default=0.0, metavar="SECONDS",
        help="step the world every SECONDS of wall time (0 = only on "
        "POST /world/step)",
    )
    serve.add_argument(
        "--for-seconds", type=float, default=None,
        help="exit after this many wall seconds (for tests and CI)",
    )
    serve.add_argument(
        "--no-ops", action="store_true",
        help="disable the ops plane (no tracing, SLOs or flight recorder; "
        "response bytes are identical either way)",
    )
    serve.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="write flight-recorder bundles here on alert/5xx/invariant "
        "(default: record in memory only, dump via GET /ops/flight)",
    )
    serve.add_argument(
        "--request-log-max", type=int, default=4096, metavar="N",
        help="bound on the replayable request log embedded in flight "
        "bundles (0 disables request logging)",
    )

    trace = sub.add_parser(
        "trace",
        help="fetch one request trace from a running service and render "
        "the span tree",
    )
    trace.add_argument("trace_id", help="trace id, e.g. t00000007")
    trace.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="service base URL (default: http://127.0.0.1:8642)",
    )

    flight = sub.add_parser(
        "flight",
        help="flight-recorder operations against a running service",
    )
    flight_sub = flight.add_subparsers(dest="flight_command", required=True)
    flight_dump = flight_sub.add_parser(
        "dump", help="capture a post-mortem bundle (JSON + HTML) on demand"
    )
    flight_dump.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="service base URL (default: http://127.0.0.1:8642)",
    )
    flight_dump.add_argument(
        "--output", "-o", default="results/flight", metavar="DIR",
        help="directory for the bundle pair (default: results/flight)",
    )

    conf = sub.add_parser(
        "conformance",
        help="golden-trace conformance gate (record / run / diff)",
    )
    conf_sub = conf.add_subparsers(dest="conformance_command", required=True)

    conf_run = conf_sub.add_parser(
        "run", help="replay the committed golden corpus (+relations)"
    )
    conf_run.add_argument(
        "--goldens", default="tests/goldens", help="corpus directory"
    )
    conf_run.add_argument(
        "--backend",
        choices=("dense", "sparse", "batch"),
        default=None,
        help="force every replay onto this backend (cross-backend gate)",
    )
    conf_run.add_argument(
        "--skip-relations",
        action="store_true",
        help="replay goldens only; skip the metamorphic relation registry",
    )
    conf_run.add_argument(
        "--ops",
        action="store_true",
        help="replay under a process-default ops plane (tracing, SLOs, "
        "flight recorder live) — the committed bytes must still match, "
        "proving the ops plane never leaks into canonical output",
    )

    conf_rec = conf_sub.add_parser(
        "record", help="(re)record the golden corpus and bill fixture"
    )
    conf_rec.add_argument(
        "--goldens", default="tests/goldens", help="corpus directory"
    )

    conf_diff = conf_sub.add_parser(
        "diff", help="run one differential pair on an ad-hoc config"
    )
    conf_diff.add_argument(
        "pair",
        help="backends | batch | faults | boruvka | ffa | shard | service "
        "| service-ops | all",
    )
    conf_diff.add_argument("--devices", "-n", type=int, default=32)
    conf_diff.add_argument("--seed", type=int, default=1)

    sub.add_parser("list", help="list experiment ids")

    report = sub.add_parser(
        "report",
        help="write a markdown experiment report, or — with --metrics — "
        "a self-contained HTML run report from run artifacts",
    )
    report.add_argument(
        "--output",
        "-o",
        default=None,
        help="output path (default: results/REPORT.md, or "
        "results/run_report.html in the --metrics run-report mode)",
    )
    report.add_argument(
        "--full", action="store_true", help="use the paper's full grid"
    )
    report.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="metrics JSON written by `repro simulate --metrics`; renders "
        "a single-file HTML run report instead of the markdown report",
    )
    report.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="JSONL trace to fold into the HTML run report "
        "(requires --metrics)",
    )
    report.add_argument(
        "--title", default=None, help="HTML run report title"
    )
    report.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="bench-history JSONL; appends the benchmark-trend sparkline "
        "section to the HTML run report (requires --metrics)",
    )

    trend = sub.add_parser(
        "trend",
        help="render benchmark wall-time / budget-headroom trends "
        "(sparklines) from committed baselines, the bench history file "
        "and fresh results",
    )
    trend.add_argument(
        "--baselines",
        default="benchmarks/baselines",
        metavar="DIR",
        help="committed baseline artifacts (default: benchmarks/baselines)",
    )
    trend.add_argument(
        "--results",
        default="results",
        metavar="DIR",
        help="fresh BENCH_*.json artifacts (default: results)",
    )
    trend.add_argument(
        "--history",
        default="results/bench_history.jsonl",
        metavar="PATH",
        help="bench-history JSONL (default: results/bench_history.jsonl)",
    )
    trend.add_argument(
        "--record",
        action="store_true",
        help="append the current results artifacts to the history file "
        "before rendering",
    )
    trend.add_argument(
        "--label",
        default="",
        help="label for --record entries (default: run-<seq>)",
    )
    trend.add_argument(
        "--output",
        "-o",
        default="results/trend_report.html",
        metavar="PATH",
        help="output HTML path (default: results/trend_report.html)",
    )
    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.id in ("fig3", "fig4"):
        kwargs = {}
        if args.sizes:
            kwargs["sizes"] = tuple(args.sizes)
        if args.seeds:
            kwargs["seeds"] = tuple(args.seeds)
        result = run_scaling(**kwargs)
        print(result.render_fig3() if args.id == "fig3" else result.render_fig4())
        return 0
    result = EXPERIMENTS[args.id]()
    print(result.render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.obs import Observability, write_jsonl_trace, write_metrics_json
    from repro.scenarios import get_scenario

    try:
        config = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    overrides = {"seed": args.seed}
    if args.devices is not None:
        overrides["n_devices"] = args.devices
    if args.area is not None:
        overrides["area_side_m"] = args.area
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.faults is not None:
        from repro.faults import FaultConfig

        try:
            overrides["faults"] = FaultConfig.from_spec(args.faults)
        except ValueError as exc:
            print(f"invalid --faults spec: {exc}", file=sys.stderr)
            return 2
    try:
        config = config.replace(**overrides)
    except ValueError as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2
    if args.shards is not None:
        return _simulate_sharded(args, config)
    try:
        network = D2DNetwork(config)
    except ValueError as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2
    stats = network.degree_stats()
    print(
        f"topology [{args.scenario}]: {network.n} devices, "
        f"{config.area_side_m:.0f} m side, mean degree {stats['mean']:.1f}"
    )
    # one shared bundle: the algorithm label keeps the runs apart; the
    # telemetry bus is always on so alerts land in the metrics artifact
    obs = Observability(keep_trace=args.trace is not None, stream=True)
    if args.live:
        from repro.obs.analyzers import LiveProgress

        obs.bus.subscribe(LiveProgress())
    runs = []
    if args.algorithm in ("st", "both"):
        runs.append(STSimulation(network, obs=obs).run())
    if args.algorithm in ("fst", "both"):
        runs.append(FSTSimulation(network, obs=obs).run())
    obs.bus.finalize()
    if config.faults is not None and config.faults.active:
        print(f"faults: {args.faults}")
    for result in runs:
        print(result.summary())
        if "faults_injected" in result.extra:
            print(
                f"  faults injected {result.extra['faults_injected']}, "
                f"crashed {result.extra.get('crashed', 0)}, "
                f"repairs {result.extra.get('repairs', 0)}, "
                f"discovery retries {result.extra.get('discovery_retries', 0)}"
            )
        if args.breakdown:
            for kind, count in sorted(result.message_breakdown.items()):
                if count:
                    print(f"  {kind:<24} {count:>8}")
    alerts = obs.bus.alerts
    if alerts:
        critical = sum(1 for a in alerts if a.severity == "critical")
        print(f"alerts: {len(alerts)} fired ({critical} critical)")
    if args.export_csv:
        from repro.analysis.export import runs_to_csv

        rows = runs_to_csv(runs, args.export_csv)
        print(f"wrote {rows} rows to {args.export_csv}")
    if args.trace:
        try:
            lines = write_jsonl_trace(obs.trace, args.trace, causal=True)
        except OSError as exc:
            print(f"cannot write trace {args.trace}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {lines} trace events to {args.trace}")
    if args.metrics:
        try:
            write_metrics_json(
                obs,
                args.metrics,
                extra={
                    "command": "simulate",
                    "scenario": args.scenario,
                    "seed": args.seed,
                },
            )
        except OSError as exc:
            print(
                f"cannot write metrics {args.metrics}: {exc}", file=sys.stderr
            )
            return 2
        print(f"wrote metrics snapshot to {args.metrics}")
    return 0


def _simulate_sharded(args: argparse.Namespace, config) -> int:
    """``repro simulate --shards RxC``: the sharded-city execution path."""
    import pathlib

    from repro.shard import CityConfig, parse_tiles, run_city

    try:
        rows, cols = parse_tiles(args.shards)
        city = CityConfig(config, rows, cols)
    except ValueError as exc:
        print(f"invalid --shards configuration: {exc}", file=sys.stderr)
        return 2
    algorithms = (
        ("st", "fst") if args.algorithm == "both" else (args.algorithm,)
    )
    res = run_city(
        city,
        algorithms=algorithms,
        workers=max(1, args.shard_workers),
        collect_obs=True,
        measure_memory=True,
    )
    print(
        f"city [{args.scenario}]: {config.n_devices} devices over "
        f"{rows}x{cols} tiles of {city.tile_side_m:.0f} m, "
        f"{args.shard_workers} worker(s), wall {res.wall_s:.2f} s, "
        f"peak {res.peak_mb:.1f} MB"
    )
    for shard in res.shards:
        run_messages = sum(
            int(r["result"]["messages"]) for r in shard["runs"].values()
        )
        print(
            f"  shard {shard['shard_id']:>3} [{shard['backend']:>6}] "
            f"n={shard['n']:>6} seed={shard['seed']} "
            f"messages={run_messages}"
        )
    halo = res.halo
    print(
        f"halo: radius {halo['radius_m']:.1f} m, "
        f"{halo['links']} cross-tile links of {halo['candidates']} "
        f"candidates, digest {halo['digest'][:16]}"
    )
    print(
        f"city total: messages {res.messages}, "
        f"converged {res.converged}, time {res.time_ms:.1f} ms, "
        f"content {res.content_hash[:16]}"
    )
    if args.breakdown:
        for algorithm in algorithms:
            for kind, count in sorted(res.bill[algorithm].items()):
                if count:
                    print(f"  {algorithm}/{kind:<24} {count:>8}")
    if args.canonical:
        try:
            path = pathlib.Path(args.canonical)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(res.canonical() + "\n")
        except OSError as exc:
            print(
                f"cannot write canonical doc {args.canonical}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"wrote canonical sharded-run doc to {args.canonical}")
    if args.metrics:
        from repro.obs.aggregate import write_snapshot

        try:
            write_snapshot(res.merged_obs, args.metrics)
        except OSError as exc:
            print(
                f"cannot write metrics {args.metrics}: {exc}", file=sys.stderr
            )
            return 2
        print(f"wrote merged shard snapshot to {args.metrics}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import Observability, activate, write_metrics_json

    obs = Observability()
    with activate(obs), obs.span(f"experiment:{args.id}"):
        if args.id in ("fig3", "fig4"):
            sizes = tuple(args.sizes) if args.sizes else (50, 100)
            seeds = tuple(args.seeds) if args.seeds else (1,)
            run_scaling(sizes=sizes, seeds=seeds)
        else:
            EXPERIMENTS[args.id]()
    from repro.obs.profile import profile_table, render_folded, render_profile_table

    print(obs.spans.render_tree(min_ms=args.min_ms))
    rows = profile_table(obs.spans)
    if rows:
        print(f"\nper-span profile (top {args.top} by self time):")
        print(render_profile_table(rows, top=args.top))
    messages = obs.metrics.get("messages_total")
    if messages is not None:
        print("\nmessages_total by algorithm:")
        for algo, total in sorted(messages.breakdown("algorithm").items()):
            print(f"  {algo:<4} {int(total)}")
    if args.folded:
        import pathlib

        try:
            path = pathlib.Path(args.folded)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(render_folded(obs.spans) + "\n")
        except OSError as exc:
            print(
                f"cannot write folded stacks {args.folded}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"wrote folded stacks to {args.folded} "
              "(flamegraph.pl / speedscope)")
    if args.metrics:
        try:
            write_metrics_json(obs, args.metrics, extra={"command": "profile"})
        except OSError as exc:
            print(
                f"cannot write metrics {args.metrics}: {exc}", file=sys.stderr
            )
            return 2
        print(f"wrote metrics snapshot to {args.metrics}")
    if args.json_path:
        import json
        import pathlib

        doc = {
            "schema": "repro.obs/1",
            "command": "profile",
            "experiment": args.id,
            "spans": obs.spans.to_dicts(),
        }
        if messages is not None:
            doc["messages_total"] = {
                algo: int(total)
                for algo, total in sorted(
                    messages.breakdown("algorithm").items()
                )
            }
        try:
            path = pathlib.Path(args.json_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        except OSError as exc:
            print(
                f"cannot write span tree {args.json_path}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"wrote span tree to {args.json_path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.config import PaperConfig
    from repro.service import (
        DiscoveryApp,
        ServiceServer,
        SteadyStateWorld,
        WorldConfig,
    )

    try:
        base = PaperConfig(
            n_devices=args.devices, seed=args.seed, backend=args.backend
        )
        wcfg = WorldConfig(
            base=base,
            arrival_rate=args.arrival_rate,
            departure_rate=args.departure_rate,
            min_population=args.min_population,
            max_population=args.max_population,
            step_ms=args.step_ms,
        )
    except ValueError as exc:
        print(f"invalid world config: {exc}", file=sys.stderr)
        return 2
    print(
        f"building world: n={base.n_devices} "
        f"backend={base.resolved_backend} seed={base.seed} "
        f"rates={wcfg.arrival_rate:g}/{wcfg.departure_rate:g} per epoch"
    )
    world = SteadyStateWorld(wcfg)
    if args.no_ops:
        app = DiscoveryApp(world)
        print("ops plane: disabled")
    else:
        from repro.obs import FlightRecorder
        from repro.obs.ops import OpsPlane
        from repro.service import RequestLog

        flight = FlightRecorder(out_dir=args.flight_dir)
        request_log = (
            RequestLog(max_entries=args.request_log_max)
            if args.request_log_max > 0
            else None
        )
        app = DiscoveryApp(
            world, ops=OpsPlane(flight=flight), request_log=request_log
        )
        sink = args.flight_dir or "memory (GET /ops/flight)"
        print(f"ops plane: SLOs + tracing live, flight bundles -> {sink}")
    server = ServiceServer(app, args.host, args.port)

    async def _main() -> None:
        await server.start()
        print(f"serving on {server.url}")
        stepper = None
        if args.auto_step > 0:

            async def _auto_step() -> None:
                while True:
                    await asyncio.sleep(args.auto_step)
                    if not world.paused:
                        world.step()

            stepper = asyncio.get_running_loop().create_task(_auto_step())
        try:
            await server.serve_forever(for_seconds=args.for_seconds)
        finally:
            if stepper is not None:
                stepper.cancel()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("stopped")
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.conformance import (
        record_corpus,
        render_summary,
        run_pairs,
        run_relations,
        verify_corpus,
    )
    from repro.core.config import PaperConfig

    if args.conformance_command == "record":
        paths = record_corpus(args.goldens)
        print(f"recorded {len(paths)} files under {args.goldens}")
        return 0

    if args.conformance_command == "run":
        from contextlib import nullcontext

        if args.ops:
            from repro.obs import FlightRecorder
            from repro.obs.ops import OpsPlane, default_ops

            scope = default_ops(OpsPlane(flight=FlightRecorder()))
        else:
            scope = nullcontext()
        with scope:
            checks = [
                (name, div)
                for name, div in verify_corpus(
                    args.goldens, backend=args.backend
                )
            ]
            if not args.skip_relations:
                checks += [
                    (f"relation:{name}", div)
                    for name, div in run_relations(
                        PaperConfig(n_devices=16, seed=1)
                    )
                ]
        backend = args.backend or "as recorded"
        suffix = " +ops" if args.ops else ""
        print(
            render_summary(
                checks, title=f"conformance run [{backend}{suffix}]"
            )
        )
        return 1 if any(div is not None for _, div in checks) else 0

    if args.conformance_command == "diff":
        config = PaperConfig(n_devices=args.devices, seed=args.seed)
        try:
            names = None if args.pair == "all" else (args.pair,)
            outcomes = run_pairs(config, names)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        checks = [(o.pair, o.divergence) for o in outcomes]
        print(render_summary(checks, title="conformance diff"))
        for o in outcomes:
            print(f"  [{o.pair}] {o.detail}")
        return 1 if any(not o.ok for o in outcomes) else 0

    raise AssertionError(
        f"unhandled conformance command {args.conformance_command!r}"
    )


def _fetch_json(url: str) -> tuple[int, dict]:
    """GET ``url`` and parse the JSON body (also on error statuses)."""
    import json
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.ops import OpsSpan, render_trace

    url = f"{args.url.rstrip('/')}/trace/{args.trace_id}"
    try:
        status, doc = _fetch_json(url)
    except OSError as exc:
        print(f"cannot reach service at {args.url}: {exc}", file=sys.stderr)
        return 2
    if status != 200:
        print(f"{url}: {status} {doc.get('error', '')}", file=sys.stderr)
        return 1
    spans = [OpsSpan.from_dict(d) for d in doc["spans"]]
    print(f"trace {doc['trace_id']} ({len(spans)} spans)")
    print(render_trace(spans))
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.obs.flight import render_flight_html

    url = f"{args.url.rstrip('/')}/ops/flight"
    try:
        status, doc = _fetch_json(url)
    except OSError as exc:
        print(f"cannot reach service at {args.url}: {exc}", file=sys.stderr)
        return 2
    if status != 200:
        print(f"{url}: {status} {doc.get('error', '')}", file=sys.stderr)
        return 1
    directory = pathlib.Path(args.output)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "flight_manual.json"
    html_path = directory / "flight_manual.html"
    json_path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    html_path.write_text(render_flight_html(doc), encoding="utf-8")
    print(
        f"flight bundle: {len(doc.get('requests', []))} requests, "
        f"{len(doc.get('alerts', []))} alerts, "
        f"{len(doc.get('violations', []))} violations"
    )
    print(f"wrote {json_path} and {html_path}")
    return 0


def _cmd_run_report(args: argparse.Namespace) -> int:
    """HTML run-report mode of ``repro report`` (from run artifacts)."""
    import json

    from repro.obs import read_jsonl_trace
    from repro.obs.report import load_metrics_document, write_run_report

    try:
        doc = load_metrics_document(args.metrics)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(
            f"cannot read metrics document {args.metrics}: {exc}",
            file=sys.stderr,
        )
        return 2
    records = None
    if args.trace:
        try:
            records = read_jsonl_trace(args.trace)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot read trace {args.trace}: {exc}", file=sys.stderr)
            return 2
    history_series = None
    if args.history:
        from repro.obs.history import bench_series

        try:
            history_series = bench_series(history_path=args.history)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(
                f"cannot read history {args.history}: {exc}", file=sys.stderr
            )
            return 2
    output = args.output or "results/run_report.html"
    title = args.title or (
        f"repro run report — {doc.get('scenario', 'run')} "
        f"(seed {doc.get('seed', '?')})"
    )
    try:
        path = write_run_report(
            doc, output, records, title=title, history_series=history_series
        )
    except OSError as exc:
        print(f"cannot write report {output}: {exc}", file=sys.stderr)
        return 2
    alerts = doc.get("alerts", [])
    print(f"wrote run report to {path} ({len(alerts)} alerts)")
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    """Render the benchmark trend report (``repro trend``)."""
    import json

    from repro.obs.history import (
        append_history,
        bench_series,
        trend_rows,
        write_trend_report,
    )

    try:
        if args.record:
            import pathlib

            recorded = 0
            results = pathlib.Path(args.results)
            for path in sorted(results.glob("BENCH_*.json")):
                artifact = json.loads(path.read_text())
                if artifact.get("schema") != "repro.bench/1":
                    continue
                point = append_history(args.history, artifact, args.label)
                print(
                    f"recorded {point.bench} seq {point.seq} "
                    f"({point.label}) into {args.history}"
                )
                recorded += 1
            if not recorded:
                print(f"no bench artifacts found under {args.results}")
        series = bench_series(
            baseline_dir=args.baselines,
            history_path=args.history,
            results_dir=args.results,
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot assemble bench history: {exc}", file=sys.stderr)
        return 2
    if not series:
        print(
            "no benchmark artifacts in any source "
            f"({args.baselines}, {args.history}, {args.results})",
            file=sys.stderr,
        )
        return 2
    try:
        path = write_trend_report(series, args.output)
    except OSError as exc:
        print(f"cannot write trend report {args.output}: {exc}", file=sys.stderr)
        return 2
    for row in trend_rows(series):
        delta = (
            f"{row.delta_prev:+.1%} vs prev"
            if row.delta_prev is not None
            else "single point"
        )
        headroom = (
            f", headroom {row.headroom:+.4f} ({row.headroom_name})"
            if row.headroom is not None
            else ""
        )
        print(f"  {row.bench:<28} {row.points} point(s), {delta}{headroom}")
    print(f"wrote trend report to {path}")
    return 0


def _cmd_list() -> int:
    for exp_id in sorted(EXPERIMENTS):
        print(exp_id)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "flight":
        return _cmd_flight(args)
    if args.command == "conformance":
        return _cmd_conformance(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "trend":
        return _cmd_trend(args)
    if args.command == "report":
        if args.metrics is not None:
            return _cmd_run_report(args)
        if args.trace is not None:
            print("--trace requires --metrics", file=sys.stderr)
            return 2
        if args.history is not None:
            print("--history requires --metrics", file=sys.stderr)
            return 2
        from repro.experiments.report import generate_report

        report = generate_report(fast=not args.full)
        path = report.save(args.output or "results/REPORT.md")
        print(f"report written to {path}")
        print(
            f"checks: {'all pass' if report.all_checks_pass else 'FAILURES'}; "
            f"message crossover n={report.crossover_messages}"
        )
        return 0 if report.all_checks_pass else 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
