#!/usr/bin/env python
"""Stadium crowd — dense D2D offload scenario (the paper's §I motivation).

A stand section packs 300 devices into 60 m × 60 m; the operator wants
them synchronized and organized into a spanning tree so replay-clip
traffic can be offloaded from the base station onto D2D links.  Density
is ~6× the Table I default, which is exactly the regime where the mesh
baseline's discovery traffic explodes and the proposed ST method earns
its keep.

Run:  python examples/stadium_crowd.py
"""

import numpy as np

from repro import D2DNetwork, FSTSimulation, PaperConfig, STSimulation


def main() -> None:
    config = PaperConfig(
        n_devices=300,
        area_side_m=60.0,
        seed=42,
        # crowded stands: bodies soak RF — heavier shadowing than Table I
        shadowing_sigma_db=12.0,
    )
    network = D2DNetwork(config)
    stats = network.degree_stats()
    print(
        f"Stand section: {network.n} devices / "
        f"{config.area_side_m:.0f} m x {config.area_side_m:.0f} m "
        f"(~{config.density_per_m2 * 1e4:.0f} per 100 m²), "
        f"mean degree {stats['mean']:.0f}"
    )

    st = STSimulation(network).run()
    fst = FSTSimulation(network).run()
    print("\n" + st.summary())
    print(fst.summary())
    msg_note = (
        f"{fst.messages / st.messages:.1f}x fewer messages"
        if st.messages < fst.messages
        else f"{st.messages / fst.messages:.1f}x more messages (tree overhead "
        "amortizes past the ~600-device crossover)"
    )
    print(
        f"\nST organizes the section {fst.time_ms / st.time_ms:.1f}x faster, "
        f"using {msg_note}."
    )

    # D2D relay depth: how many hops does a clip travel on the tree?
    import networkx as nx

    tree = nx.Graph(st.tree_edges)
    ecc = nx.eccentricity(tree)
    center = min(ecc, key=ecc.get)
    depths = nx.single_source_shortest_path_length(tree, center)
    print(
        f"tree rooted at device {center}: max relay depth "
        f"{max(depths.values())} hops, mean {np.mean(list(depths.values())):.1f}"
    )
    edge_m = [network.true_distances()[u, v] for u, v in st.tree_edges]
    print(
        f"tree links: mean {np.mean(edge_m):.1f} m, max {np.max(edge_m):.1f} m "
        "(heavy-edge selection keeps D2D hops short)"
    )


if __name__ == "__main__":
    main()
