#!/usr/bin/env python
"""Mobile D2D — eq. (13) as motion, and surviving it (§VI future work).

Two demonstrations in one scenario:

1. **Interest-driven drift.**  Devices advertising the same service treat
   each other as bright fireflies: the eq. (13) location update pulls
   them together, shortening prospective D2D links (watch the mean
   same-service pairwise distance fall).
2. **Re-synchronization under motion.**  A `MobilitySession` rebuilds the
   channel, re-grows the heavy-edge tree and re-synchronizes after each
   movement epoch; because devices keep their oscillator clocks, re-sync
   costs roughly one pulse per device, while tree stability degrades
   gracefully with distance travelled.

Run:  python examples/mobile_drift.py
"""

import numpy as np

from repro.core.config import PaperConfig
from repro.mobility import (
    FireflyAttractionMobility,
    MobilitySession,
    RandomWaypoint,
)


def interest_drift() -> None:
    print("— interest-driven drift (eq. 13) —")
    rng = np.random.default_rng(5)
    n, side = 60, 120.0
    positions = rng.uniform(0, side, size=(n, 2))
    services = rng.integers(0, 2, size=n)
    # brightness: devices of service 1 are the attractors
    brightness = services.astype(float) + 0.01 * rng.random(n)

    mob = FireflyAttractionMobility(
        positions, side, step=0.35, gamma=5e-5, eta_m=0.3,
        rng=np.random.default_rng(6),
    )
    peers = np.nonzero(services == 1)[0]
    print(f"{n} devices, {peers.size} advertise the shared service")
    for step in range(0, 61, 15):
        if step:
            for _ in range(15):
                mob.move(brightness)
        print(
            f"  step {step:>2}: mean same-service distance "
            f"{mob.mean_pairwise_distance(peers):6.1f} m"
        )


def motion_resync() -> None:
    print("\n— re-synchronization under random-waypoint motion —")
    n, side = 40, 90.0
    config = PaperConfig(n_devices=n, area_side_m=side, seed=11)
    mover = RandomWaypoint(
        np.random.default_rng(12).uniform(0, side, size=(n, 2)),
        side,
        speed_range_mps=(1.0, 3.0),
        pause_range_s=(0.0, 0.0),
        rng=np.random.default_rng(13),
    )
    session = MobilitySession(config, mover, seed=14)
    print("epoch  moved(s)  resync_ms  messages  tree-stability")
    for epoch in range(5):
        if epoch:
            for _ in range(10):
                mover.step(1.0)
        record = session.run_epoch()
        print(
            f"{record.epoch:>5}  {10 if epoch else 0:>8}  "
            f"{record.resync_time_ms:>9.0f}  {record.resync_messages:>8}  "
            f"{record.tree_stability:>14.2f}"
        )
    print(
        "devices keep their clocks across epochs, so re-sync costs ~1 pulse "
        "per device\nwhile the heavy-edge tree adapts to the new geometry."
    )


if __name__ == "__main__":
    interest_drift()
    motion_resync()
