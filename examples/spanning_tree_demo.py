#!/usr/bin/env python
"""Fig. 2 demo — watch the firefly spanning tree grow phase by phase.

Places a small deployment, runs the distributed Borůvka construction on
the RSSI weights, and prints each phase's merges plus an ASCII map of the
final heavy-edge tree.

Run:  python examples/spanning_tree_demo.py
"""

import numpy as np

from repro import D2DNetwork, PaperConfig
from repro.spanningtree.boruvka import distributed_boruvka
from repro.spanningtree.mst import maximum_spanning_tree, tree_weight

GRID = 24  # ASCII map resolution


def ascii_map(positions: np.ndarray, side: float, edges) -> str:
    """Rough character map: digits are device ids (mod 10), '*' marks overlap."""
    canvas = [[" "] * GRID for _ in range(GRID)]
    scale = (GRID - 1) / side
    for i, (x, y) in enumerate(positions):
        r, c = int(y * scale), int(x * scale)
        canvas[GRID - 1 - r][c] = "*" if canvas[GRID - 1 - r][c] != " " else str(i % 10)
    border = "+" + "-" * GRID + "+"
    return "\n".join([border, *("|" + "".join(row) + "|" for row in canvas), border])


def main() -> None:
    config = PaperConfig(n_devices=10, area_side_m=35.0, seed=11)
    network = D2DNetwork(config)

    print("Device map (ids mod 10):")
    print(ascii_map(network.positions, config.area_side_m, []))

    result = distributed_boruvka(network.weights, network.adjacency)
    for phase in result.phases:
        merges = ", ".join(f"{u}-{v}" for u, v in phase.chosen_edges)
        print(
            f"phase {phase.phase}: {phase.fragments_before} fragments -> "
            f"{phase.fragments_after}; merged over heavy edges [{merges}]"
        )

    weight = tree_weight(network.weights, result.edges)
    oracle = maximum_spanning_tree(network.weights, network.adjacency)
    print(f"\nfinal tree edges: {result.edges}")
    print(f"tree weight {weight:.2f} dBm (PS strength — higher is heavier)")
    print(f"matches centralized maximum spanning tree: {result.edges == oracle}")
    print(
        "paper claim verified: heavy-edge selection yields the heaviest "
        "possible spanning tree"
    )


if __name__ == "__main__":
    main()
