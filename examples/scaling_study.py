#!/usr/bin/env python
"""Scaling study — a fast, laptop-sized cut of Figs. 3 and 4.

Runs the paired ST/FST sweep over a reduced grid and prints the two
figure tables plus the observed crossover points.  For the paper's full
grid use ``REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only``.

Run:  python examples/scaling_study.py
"""

from repro.experiments.scaling import run_scaling


def main() -> None:
    result = run_scaling(sizes=(50, 150, 400, 700), seeds=(1, 2))
    print(result.render_fig3())
    print()
    print(result.render_fig4())

    time_x = result.sweep.crossover("time_ms")
    msg_x = result.sweep.crossover("messages")
    print(
        "\nObserved crossovers: time "
        + (f"n={time_x}" if time_x else "none")
        + ", messages "
        + (f"n={msg_x}" if msg_x else "none")
        + "  (paper: time similar below ~200, messages cross near ~600)"
    )


if __name__ == "__main__":
    main()
