#!/usr/bin/env python
"""Convergence dynamics — watch the firefly population lock step by step.

Runs the mesh pulse-coupled synchronization on a 100-device deployment
with telemetry sampling, then plots (in ASCII) the Kuramoto order
parameter climbing to 1 and the number of independent flashing groups
collapsing to a single group — the §III dynamics behind every headline
number in Figs. 3–4.

Run:  python examples/convergence_dynamics.py
"""

import numpy as np

from repro import D2DNetwork, PaperConfig
from repro.analysis.ascii_plot import ascii_chart
from repro.core.pulsesync import PulseSyncKernel
from repro.oscillator.prc import LinearPRC


def main() -> None:
    config = PaperConfig(seed=19).with_devices(100, keep_density=False)
    network = D2DNetwork(config)
    kernel = PulseSyncKernel(
        network.link_budget.mean_rx_dbm,
        network.adjacency,
        LinearPRC.from_dissipation(config.dissipation, config.epsilon),
        period_ms=config.period_ms,
        threshold_dbm=config.threshold_dbm,
        refractory_ms=config.refractory_ms,
        sync_window_ms=config.sync_window_ms,
        fading=network.link_budget.fading,
    )
    result = kernel.run(
        np.random.default_rng(19), telemetry_interval_ms=25.0
    )
    print(
        f"{network.n} devices synchronized in {result.time_ms:.0f} ms "
        f"({result.fires} pulses, final spread {result.final_spread_ms:.1f} ms)\n"
    )

    r_series = [(s.time_ms, s.order_parameter) for s in result.telemetry]
    g_series = [(s.time_ms, float(s.sync_groups)) for s in result.telemetry]
    print(ascii_chart({"R": r_series}, title="Kuramoto order parameter vs time (ms)"))
    print()
    print(ascii_chart({"groups": g_series}, title="independent flashing groups vs time (ms)"))

    print("\nsampled trajectory:")
    print("    t(ms)   order R   groups   pulses")
    for s in result.telemetry:
        print(
            f"  {s.time_ms:7.0f}   {s.order_parameter:7.3f}   "
            f"{s.sync_groups:6d}   {s.fires_so_far:6d}"
        )


if __name__ == "__main__":
    main()
