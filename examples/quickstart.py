#!/usr/bin/env python
"""Quickstart — run both algorithms on the paper's Table I scenario.

Builds the default 50-device 100 m × 100 m network, runs the proposed ST
algorithm and the FST baseline on the *same* topology, and prints their
convergence summaries plus the resulting spanning tree.

Run:  python examples/quickstart.py
"""

from repro import D2DNetwork, FSTSimulation, PaperConfig, STSimulation


def main() -> None:
    config = PaperConfig()  # Table I defaults
    network = D2DNetwork(config)
    stats = network.degree_stats()
    print(
        f"Topology: {network.n} devices in {config.area_side_m:.0f} m x "
        f"{config.area_side_m:.0f} m, mean degree {stats['mean']:.1f}, "
        f"hop diameter {network.hop_diameter()}"
    )

    st = STSimulation(network).run()
    fst = FSTSimulation(network).run()

    print("\n" + st.summary())
    for kind, count in sorted(st.message_breakdown.items()):
        if count:
            print(f"  {kind:<24} {count:>8}")
    print(
        f"  spanning tree: {len(st.tree_edges)} edges, "
        f"weight {st.extra['tree_weight']:.1f} dBm, "
        f"{st.extra['phases']} Borůvka phases"
    )

    print("\n" + fst.summary())
    for kind, count in sorted(fst.message_breakdown.items()):
        if count:
            print(f"  {kind:<24} {count:>8}")
    print(
        f"  sync reached at {fst.extra['sync_time_ms']:.0f} ms, "
        f"full mesh discovery at {fst.extra['discovery_time_ms']:.0f} ms"
    )

    faster = "ST" if st.time_ms < fst.time_ms else "FST"
    cheaper = "ST" if st.messages < fst.messages else "FST"
    print(f"\nAt n={network.n}: {faster} converges first, {cheaper} uses fewer messages.")
    print("(The paper's crossover: ST wins both decisively past ~600 devices.)")


if __name__ == "__main__":
    main()
