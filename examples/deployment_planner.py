#!/usr/bin/env python
"""Deployment planner — will a D2D scenario actually work before you run it?

A downstream user's first question is rarely about the algorithms: it is
"at my area and device count, is the proximity graph even connected, and
how dense is it?"  This tool sweeps candidate areas for a fixed device
count, reporting the connectivity probability, expected degree, and the
noise-feasibility of the detection threshold, then runs the proposed ST
algorithm on the recommended configuration and exports the tree for a
visualizer.

Run:  python examples/deployment_planner.py
"""

import numpy as np

from repro import D2DNetwork, PaperConfig, STSimulation
from repro.analysis.graphio import tree_to_dot
from repro.analysis.topology import connectivity_probability, topology_stats
from repro.radio.noise import noise_floor_dbm, required_snr_db

DEVICES = 30
CANDIDATE_SIDES = (150.0, 300.0, 500.0, 800.0)


def main() -> None:
    print(
        f"threshold feasibility: noise floor {noise_floor_dbm():.1f} dBm, "
        f"-95 dBm threshold gives {required_snr_db():.1f} dB SNR margin\n"
    )

    print(f"planning for {DEVICES} devices:")
    print("side (m)  P(connected)  verdict")
    chosen = None
    for side in CANDIDATE_SIDES:
        config = PaperConfig(n_devices=DEVICES, area_side_m=side)
        p = connectivity_probability(config, attempts=40, seed=7)
        verdict = "ok" if p >= 0.9 else ("marginal" if p >= 0.5 else "too sparse")
        if chosen is None and p >= 0.9:
            chosen = side
        print(f"{side:8.0f}  {p:12.2f}  {verdict}")
    if chosen is None:
        chosen = CANDIDATE_SIDES[0]
    print(f"\nrecommended area: {chosen:.0f} m x {chosen:.0f} m")

    config = PaperConfig(n_devices=DEVICES, area_side_m=chosen, seed=7)
    network = D2DNetwork(config)
    stats = topology_stats(network)
    print(
        f"built: {stats.edges} links, mean degree {stats.mean_degree:.1f}, "
        f"hop diameter {stats.hop_diameter}, mean link {stats.mean_link_m:.0f} m"
    )

    st = STSimulation(network).run()
    print(st.summary())
    dot = tree_to_dot(
        st.tree_edges, positions=network.positions, head=st.tree_edges[0][0]
    )
    print(
        f"\nGraphviz DOT of the tree ({len(st.tree_edges)} edges) — "
        "pipe to `neato -Tpng`:"
    )
    print("\n".join(dot.splitlines()[:8]) + "\n  ...")


if __name__ == "__main__":
    main()
