#!/usr/bin/env python
"""Churn recovery — joins, failures and the repair-vs-rebuild trade-off.

Starts from a synchronized, tree-organized 50-device network, then runs a
churn script: devices join (greedy heaviest-link attach, O(1) messages),
devices fail (fragment-preserving repair), and finally a full rebuild
restores tree optimality.  The printout shows the message bill and the
optimality drift at every step — the operational story behind the
paper's §VI "more realistic scenarios".

Run:  python examples/churn_recovery.py
"""

from repro import ChurnSession, D2DNetwork, PaperConfig


def main() -> None:
    network = D2DNetwork(PaperConfig(seed=55))
    session = ChurnSession(network, initially_active=set(range(35)))
    print(
        f"initial: {len(session.active)} active devices, spanning tree of "
        f"{len(session.tree_edges)} edges (optimality 1.00)"
    )

    script = [
        ("join", 35), ("join", 36), ("join", 37), ("join", 38),
        ("fail", 7), ("join", 39), ("fail", 21), ("join", 40),
        ("join", 41), ("fail", 3), ("rebuild", -1),
    ]
    print("\nevent        device  messages  spanning  optimality")
    for kind, device in script:
        if kind == "join":
            event = session.join(device)
        elif kind == "fail":
            event = session.fail(device)
        else:
            event = session.rebuild()
        print(
            f"{event.kind:<11}  {event.device if event.device >= 0 else '-':>6}"
            f"  {event.messages:>8}  {str(session.is_spanning):>8}"
            f"  {event.optimality_ratio:>10.4f}"
        )

    joins = [e for e in session.events if e.kind == "join"]
    fails = [e for e in session.events if e.kind == "fail"]
    rebuilds = [e for e in session.events if e.kind == "rebuild"]
    print(
        f"\ntotals: {sum(e.messages for e in joins)} msgs for "
        f"{len(joins)} joins, {sum(e.messages for e in fails)} msgs for "
        f"{len(fails)} repairs, {sum(e.messages for e in rebuilds)} msgs for "
        f"the final rebuild"
    )
    print(
        "greedy joins drift the tree slightly off optimal; repairs keep it "
        "spanning for a\nfraction of a rebuild's cost; one rebuild resets "
        "optimality to 1.0."
    )


if __name__ == "__main__":
    main()
