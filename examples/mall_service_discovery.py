#!/usr/bin/env python
"""Mall ProSe — joint physical + application discovery (§I, §III).

Shoppers advertise different service interests (coupon exchange, file
share, gaming).  Each device's PS rides the RACH codec pair assigned to
its service, so receivers learn *interest* from the preamble and *range*
from RSSI — the combined discovery the paper argues for.  The example
fills neighbour tables from simulated beacon receptions, applies the
ProSe proximity criterion on the *estimated* distances, and lists the
mutual same-interest pairs that could start a D2D session.

Run:  python examples/mall_service_discovery.py
"""

import numpy as np

from repro import D2DNetwork, PaperConfig
from repro.discovery.neighbor import NeighborTable
from repro.discovery.proximity import ProximityCriterion, ProximityEvaluator
from repro.discovery.service import ServiceDirectory

SERVICES = {0: "coupon-exchange", 1: "file-share", 2: "arcade-gaming"}


def main() -> None:
    config = PaperConfig(n_devices=40, area_side_m=80.0, seed=17)
    network = D2DNetwork(config)
    rng = np.random.default_rng(17)
    interests = rng.integers(0, len(SERVICES), size=network.n)

    directory = ServiceDirectory()
    for sid, name in SERVICES.items():
        svc = directory.register(sid, name)
        print(
            f"service {sid} ({name}): keep-alive preamble "
            f"{svc.keep_alive_codec.index}, event preamble {svc.event_codec.index}"
        )

    # each device listens to 5 beacon rounds and fills its neighbour table
    tables: dict[int, NeighborTable] = {
        i: NeighborTable(i, stale_after_ms=2_000.0) for i in range(network.n)
    }
    fade_rng = np.random.default_rng(99)
    for round_idx in range(5):
        now = 100.0 * (round_idx + 1)
        for tx in range(network.n):
            power, detected = network.link_budget.broadcast_power(tx, fade_rng)
            for rx in np.nonzero(detected)[0]:
                est = network.ranging.estimate(float(power[rx]))
                tables[int(rx)].observe(
                    tx,
                    float(power[rx]),
                    now,
                    service=int(interests[tx]),
                    estimated_distance_m=float(est),
                )

    print(f"\nafter 5 beacon rounds: mean neighbours known = "
          f"{np.mean([len(t) for t in tables.values()]):.1f}")

    for sid, name in SERVICES.items():
        evaluator = ProximityEvaluator(
            ProximityCriterion(max_distance_m=30.0, require_service=sid)
        )
        pairs = evaluator.proximity_pairs(tables)
        true_d = network.true_distances()
        shown = ", ".join(
            f"{a}<->{b} (est ok, true {true_d[a, b]:.0f} m)" for a, b in pairs[:4]
        )
        print(f"\n{name}: {len(pairs)} mutual ProSe pairs within ~30 m")
        if pairs:
            print(f"  e.g. {shown}")

    # ranging honesty check: estimated vs true distance over known links
    errors = []
    for rx, table in tables.items():
        for nid in table.known_ids():
            entry = table.get(nid)
            if entry.estimated_distance_m is not None:
                true = network.true_distances()[rx, nid]
                if true > 1.0:
                    errors.append(entry.estimated_distance_m / true)
    errors = np.asarray(errors)
    print(
        f"\nRSSI ranging (eqs 6-12): median estimate/true ratio "
        f"{np.median(errors):.2f}, 90th percentile {np.percentile(errors, 90):.2f} "
        "(log-normal error, median-unbiased as derived in §III)"
    )


if __name__ == "__main__":
    main()
